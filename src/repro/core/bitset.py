"""Bitset convoy algebra: clusters and candidates as Python big-int masks.

The pruning machinery of k/2-hop is set algebra — candidate intersection
(Lemma 5), sweep continuation chains, DCM-merge, subsumption filtering —
and all of it ran on ``frozenset`` objects, paying per-element hashing on
every ``&`` and ``==``.  This module interns object ids into bit
positions once per mining run, after which:

* intersection is a single ``&`` on arbitrary-precision ints,
* cardinality is ``int.bit_count()`` (one machine instruction per word),
* equality and subset tests (``a & b == a``) are word-wise compares.

For the fleet sizes convoys live at (tens to a few thousand objects) a
mask fits in a handful of 30-bit digits, so every operation the sweep and
merge loops perform becomes a few nanoseconds instead of a frozenset
traversal.  Masks are only materialized back into :data:`Cluster` frozen
sets at phase boundaries.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence

#: Structurally identical to :data:`repro.core.types.Cluster`; declared here
#: (not imported) so :mod:`repro.core.types` can build on this module.
Cluster = FrozenSet[int]

ObjectMask = int


class ObjectInterner:
    """Bijective object-id <-> bit-position table for one mining run.

    Bit positions are handed out in first-seen order; the table only
    grows, so masks created at different pipeline phases stay mutually
    compatible for the lifetime of the interner.
    """

    __slots__ = ("_bit_of", "_oid_at")

    def __init__(self, oids: Iterable[int] = ()):
        self._bit_of: Dict[int, int] = {}
        self._oid_at: List[int] = []
        for oid in oids:
            self.bit_of(oid)

    def __len__(self) -> int:
        return len(self._oid_at)

    def bit_if_known(self, oid: int):
        """Bit position of ``oid`` if already interned, else ``None``.

        Query paths use this to probe membership without growing the
        table: an oid the interner has never seen cannot be a member of
        any mask it ever produced.
        """
        return self._bit_of.get(oid)

    def bit_of(self, oid: int) -> int:
        """Bit position of ``oid``, interning it on first sight."""
        bit = self._bit_of.get(oid)
        if bit is None:
            bit = len(self._oid_at)
            self._bit_of[oid] = bit
            self._oid_at.append(oid)
        return bit

    def mask_of(self, objects: Iterable[int]) -> ObjectMask:
        """Big-int mask with one bit set per object id."""
        mask = 0
        bit_of = self.bit_of
        for oid in objects:
            mask |= 1 << bit_of(oid)
        return mask

    def masks_of(self, clusters: Sequence[Iterable[int]]) -> List[ObjectMask]:
        return [self.mask_of(cluster) for cluster in clusters]

    def cluster_of(self, mask: ObjectMask) -> Cluster:
        """Materialize a mask back into a frozen set of object ids."""
        oid_at = self._oid_at
        members = []
        while mask:
            low = mask & -mask
            members.append(oid_at[low.bit_length() - 1])
            mask ^= low
        return frozenset(members)


def mask_size(mask: ObjectMask) -> int:
    """Cardinality of the encoded object set."""
    return mask.bit_count()


def is_submask(a: ObjectMask, b: ObjectMask) -> bool:
    """True when the set encoded by ``a`` is a subset of ``b``'s."""
    return a & b == a
