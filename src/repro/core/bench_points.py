"""Benchmark points and hop windows (§4.1 of the paper).

Benchmark points are timestamps spaced ``hop = floor(k/2)`` apart, starting
at the dataset's first tick.  Any ``k`` consecutive ticks inside the dataset
contain at least two *consecutive* benchmark points (Lemma 3), because any
``2*hop <= k`` consecutive integers contain two multiples of ``hop``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .types import Timestamp


@dataclass(frozen=True)
class HopWindow:
    """The open interval between two consecutive benchmark points.

    ``left`` and ``right`` are the bordering benchmark points; the window's
    interior timestamps are ``left + 1 .. right - 1`` (possibly empty when
    ``hop == 1``).  Spanning convoys of the window get lifespan
    ``[left, right]`` (Algorithm 2, line 11).
    """

    left: Timestamp
    right: Timestamp

    def __post_init__(self) -> None:
        if self.right <= self.left:
            raise ValueError(f"degenerate hop window [{self.left}, {self.right}]")

    @property
    def interior(self) -> range:
        return range(self.left + 1, self.right)


def benchmark_points(start: Timestamp, end: Timestamp, hop: int) -> List[Timestamp]:
    """Benchmark points ``start + i*hop`` up to ``end`` inclusive."""
    if hop < 1:
        raise ValueError(f"hop must be >= 1, got {hop}")
    if end < start:
        return []
    return list(range(start, end + 1, hop))


def hop_windows(points: List[Timestamp]) -> List[HopWindow]:
    """Hop windows between consecutive benchmark points."""
    return [HopWindow(a, b) for a, b in zip(points, points[1:])]
