"""Recursive fully-connected-convoy validation (§4.6, Algorithm 4).

A candidate ``(O, T)`` is a fully connected convoy iff mining the database
*restricted to O over T* returns exactly ``(O, T)``.  The validator first
tries the cheap HWMT*-ordered confirmation pass — clustering the restricted
snapshots extremes-first, failing fast — and only on a shrink or split
falls back to a full restricted sweep whose fragments are re-validated
recursively.  This recursion is the paper's proposed correction to DCVal:
a fragment produced while shrinking a candidate was never checked for full
connectivity over the timestamps it already covered.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Set, Tuple

from .bitset import ObjectInterner, ObjectMask
from .enginemode import use_scalar
from .hwmt import hwmt_order, recluster
from .params import ConvoyQuery
from .source import TrajectorySource
from .stats import MiningStats
from .sweep import sweep_restricted
from .types import Convoy, Timestamp, maximal_convoys


def is_fully_connected(
    source: TrajectorySource,
    convoy: Convoy,
    query: ConvoyQuery,
    stats: Optional[MiningStats] = None,
) -> bool:
    """Fast HWMT*-ordered check: does ``O`` form one cluster at every tick?

    Clusters the restricted snapshot at the interval extremes first, then at
    midpoints (the HWMT* order), returning ``False`` on the first tick where
    the candidate does not survive in its exact shape.
    """
    order = [convoy.start, convoy.end]
    if convoy.end > convoy.start:
        order += hwmt_order(convoy.start, convoy.end)
    for t in order:
        clusters = recluster(source, t, convoy.objects, query, stats, "validation")
        if clusters != [convoy.objects]:
            return False
    return True


def validate_convoys(
    source: TrajectorySource,
    candidates: Sequence[Convoy],
    query: ConvoyQuery,
    stats: Optional[MiningStats] = None,
) -> List[Convoy]:
    """Reduce extended candidates to maximal fully connected convoys.

    The dedup set of already-enqueued candidates is keyed on interned
    bitset masks plus lifespans, so re-discovered fragments cost one int
    hash instead of a frozenset hash.
    """
    if use_scalar():
        # Oracle mode: dedup on the convoys themselves (the original path).
        def key(convoy: Convoy) -> Convoy:
            return convoy

    else:
        interner = ObjectInterner()

        def key(convoy: Convoy) -> Tuple[ObjectMask, Timestamp, Timestamp]:
            return interner.mask_of(convoy.objects), convoy.start, convoy.end

    queue = deque(
        c for c in candidates if c.duration >= query.k and c.size >= query.m
    )
    seen: Set = {key(c) for c in queue}
    confirmed: List[Convoy] = []
    while queue:
        candidate = queue.popleft()
        if is_fully_connected(source, candidate, query, stats):
            confirmed.append(candidate)
            continue
        fragments = sweep_restricted(
            source,
            candidate.objects,
            candidate.start,
            candidate.end,
            query,
            stats,
        )
        for fragment in fragments:
            if fragment == candidate:
                # The sweep can return the candidate itself when the fast
                # path failed only because DBSCAN split border points; it
                # is then a convoy of its own restriction, hence FC.
                confirmed.append(fragment)
            elif (
                fragment.duration >= query.k
                and fragment.size >= query.m
                and key(fragment) not in seen
            ):
                seen.add(key(fragment))
                queue.append(fragment)
    return maximal_convoys(confirmed)
