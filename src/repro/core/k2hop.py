"""The k/2-hop convoy miner (Algorithm 1).

Pipeline:

1. cluster the benchmark snapshots (every ``floor(k/2)``-th tick);
2. intersect adjacent benchmark cluster sets into candidate clusters;
3. HWMT: confirm candidates inside each hop window (midpoint-first order);
4. DCM-merge spanning convoys across windows;
5. extend right, then left, to exact lifespans; apply the ``k`` filter;
6. validate to maximal fully connected convoys.

Every phase is timed and every point fetched for clustering is counted, so
one mining run yields the data for Figures 8i/8j and Table 5 as well as the
result set itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.obs import METRICS

from .bench_points import benchmark_points, hop_windows
from .candidates import cluster_benchmark_point, intersect_cluster_sets
from .extend import extend_left, extend_right
from .hwmt import mine_hop_window
from .merge import merge_spanning_convoys
from .params import ConvoyQuery
from .source import TrajectorySource
from .stats import MiningStats
from .sweep import sweep_restricted
from .types import Convoy, sort_convoys
from .validate import validate_convoys


_RUNS = METRICS.counter(
    "repro_mining_runs_total", "Completed k/2-hop mining runs."
)
_CONVOYS = METRICS.counter(
    "repro_mining_convoys_total", "Convoys produced by completed mining runs."
)


@dataclass
class MiningResult:
    """Convoys plus the statistics gathered while mining them."""

    convoys: List[Convoy]
    stats: MiningStats

    def __iter__(self):
        return iter(self.convoys)

    def __len__(self) -> int:
        return len(self.convoys)


class K2Hop:
    """The k/2-hop miner; construct once per query, call :meth:`mine`."""

    def __init__(self, query: ConvoyQuery):
        self.query = query

    def mine(self, source: TrajectorySource) -> MiningResult:
        """Mine all maximal fully connected convoys of length >= k."""
        stats = MiningStats(total_points=source.num_points)
        if source.num_points == 0:
            result = MiningResult([], stats)
        elif self.query.k < 2:
            result = self._mine_degenerate(source, stats)
        else:
            result = self._mine_hops(source, stats)
        _RUNS.inc()
        if result.convoys:
            _CONVOYS.inc(len(result.convoys))
        return result

    # -- the real pipeline -------------------------------------------------

    def _mine_hops(self, source: TrajectorySource, stats: MiningStats) -> MiningResult:
        query = self.query
        start, end = source.start_time, source.end_time
        if end - start + 1 < query.k:
            return MiningResult([], stats)  # dataset shorter than any convoy

        points = benchmark_points(start, end, query.hop)
        stats.benchmark_point_count = len(points)
        with stats.timed("benchmark_clustering"):
            benchmark_clusters = [
                cluster_benchmark_point(source, t, query, stats) for t in points
            ]

        windows = hop_windows(points)
        with stats.timed("candidate_intersection"):
            window_candidates = [
                intersect_cluster_sets(
                    benchmark_clusters[i], benchmark_clusters[i + 1], query.m
                )
                for i in range(len(windows))
            ]
        stats.candidate_cluster_count = sum(len(cc) for cc in window_candidates)

        with stats.timed("hwmt"):
            spanning = [
                mine_hop_window(source, window, candidates, query, stats)
                for window, candidates in zip(windows, window_candidates)
            ]
        stats.spanning_convoy_count = sum(len(v) for v in spanning)

        with stats.timed("merge"):
            merged = merge_spanning_convoys(spanning, query.m)
        stats.merged_convoy_count = len(merged)

        with stats.timed("extend_right"):
            right_closed = extend_right(source, merged, query, stats)
        with stats.timed("extend_left"):
            extended = extend_left(source, right_closed, query, stats)
        stats.pre_validation_convoy_count = len(extended)

        with stats.timed("validation"):
            convoys = validate_convoys(source, extended, query, stats)
        stats.convoy_count = len(convoys)
        return MiningResult(sort_convoys(convoys), stats)

    # -- k == 1 fallback -----------------------------------------------------

    def _mine_degenerate(
        self, source: TrajectorySource, stats: MiningStats
    ) -> MiningResult:
        """With ``k == 1`` Lemma 3 gives no pruning; sweep every snapshot."""
        query = self.query
        with stats.timed("hwmt"):
            candidates = sweep_restricted(
                source, None, source.start_time, source.end_time, query,
                stats, phase="hwmt",
            )
        stats.pre_validation_convoy_count = len(candidates)
        with stats.timed("validation"):
            convoys = validate_convoys(source, candidates, query, stats)
        stats.convoy_count = len(convoys)
        return MiningResult(sort_convoys(convoys), stats)


def mine_convoys(
    source: TrajectorySource, m: int, k: int, eps: float
) -> MiningResult:
    """One-call public API: mine maximal FC convoys with k/2-hop."""
    return K2Hop(ConvoyQuery(m=m, k=k, eps=eps)).mine(source)
