"""Mining statistics: per-phase wall times and data-pruning counters.

These numbers back two of the paper's experiments directly:

* Figure 8i — per-phase execution time of the k/2-hop pipeline;
* Table 5 — points processed vs. total points ("pruning performance").
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.obs import METRICS

#: Canonical phase names, in pipeline order (mirrors Algorithm 1).
PHASES = (
    "benchmark_clustering",
    "candidate_intersection",
    "hwmt",
    "merge",
    "extend_right",
    "extend_left",
    "validation",
)

#: Global per-phase instruments: every MiningStats writes through to
#: these, so `/metrics` and Figure-8i benchmarks read one source.
#: Children are pre-created for every canonical phase so the exposition
#: covers mining even in a process that has not mined yet.
PHASE_SECONDS = METRICS.histogram(
    "repro_mining_phase_seconds",
    "Wall-clock seconds per k/2-hop pipeline phase (Figure 8i).",
    ["phase"],
)
PHASE_POINTS = METRICS.counter(
    "repro_mining_points_total",
    "Points fetched for clustering per pipeline phase (Table 5).",
    ["phase"],
)
for _phase in PHASES:
    PHASE_SECONDS.labels(_phase)
    PHASE_POINTS.labels(_phase)


@dataclass
class MiningStats:
    """Counters filled in by :class:`repro.core.k2hop.K2Hop`."""

    #: Wall-clock seconds spent in each pipeline phase.
    phase_times: Dict[str, float] = field(default_factory=dict)
    #: Number of (oid, t) points fetched for clustering, per phase.
    points_processed_by_phase: Dict[str, int] = field(default_factory=dict)
    #: Total points in the dataset (for the pruning ratio).
    total_points: int = 0
    #: Benchmark points used.
    benchmark_point_count: int = 0
    #: Candidate clusters surviving the intersection step.
    candidate_cluster_count: int = 0
    #: 1st-order spanning convoys found by HWMT.
    spanning_convoy_count: int = 0
    #: Maximal spanning convoys after merging.
    merged_convoy_count: int = 0
    #: Convoys entering the validation phase (Figure 8j).
    pre_validation_convoy_count: int = 0
    #: Final fully connected convoys.
    convoy_count: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @contextmanager
    def timed(self, phase: str) -> Iterator[None]:
        """Accumulate wall time of a pipeline phase.

        Writes through to the global ``repro_mining_phase_seconds``
        histogram so `/metrics` and this object agree on one timing
        source.
        """
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.phase_times[phase] = self.phase_times.get(phase, 0.0) + elapsed
            PHASE_SECONDS.labels(phase).observe(elapsed)

    def add_points(self, phase: str, count: int) -> None:
        # Guarded: the parallel miner updates counters from worker threads.
        with self._lock:
            current = self.points_processed_by_phase.get(phase, 0)
            self.points_processed_by_phase[phase] = current + count
        PHASE_POINTS.labels(phase).inc(count)

    @property
    def points_processed(self) -> int:
        """Total points touched by clustering across all phases."""
        return sum(self.points_processed_by_phase.values())

    @property
    def pruning_ratio(self) -> float:
        """Fraction of the dataset *not* touched (Table 5's "pruning")."""
        if self.total_points == 0:
            return 0.0
        processed = min(self.points_processed, self.total_points)
        return 1.0 - processed / self.total_points

    @property
    def total_time(self) -> float:
        return sum(self.phase_times.values())

    def summary(self) -> str:
        """Human-readable multi-line report (used by the CLI and examples)."""
        lines = ["k/2-hop mining statistics:"]
        for phase in PHASES:
            if phase in self.phase_times:
                lines.append(
                    f"  {phase:<24s} {self.phase_times[phase] * 1e3:9.2f} ms"
                )
        lines.append(f"  total points            {self.total_points:>12d}")
        lines.append(f"  points processed        {self.points_processed:>12d}")
        lines.append(f"  pruning                 {self.pruning_ratio * 100:11.2f} %")
        lines.append(f"  convoys found           {self.convoy_count:>12d}")
        return "\n".join(lines)
