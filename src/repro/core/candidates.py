"""Benchmark clustering and candidate-cluster intersection (§4.2).

A convoy of length >= k must cross two consecutive benchmark points, and at
each of them its object set lies inside one benchmark cluster (Lemma 4).
Hence the *candidate clusters* for hop window ``H_i`` — the only object sets
worth re-clustering inside the window — are the pairwise intersections of
the two bordering benchmark cluster sets with at least ``m`` survivors
(Lemma 5).  Everything else is pruned without ever being read.

The intersection runs on bitset masks by default (one ``&`` plus a
popcount per cluster pair); :func:`intersect_cluster_sets_scalar` keeps
the frozenset loop as the oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..clustering import cluster_snapshot
from .bitset import ObjectInterner
from .enginemode import use_scalar
from .params import ConvoyQuery
from .source import TrajectorySource
from .stats import MiningStats
from .types import Cluster, Timestamp


def cluster_benchmark_point(
    source: TrajectorySource,
    t: Timestamp,
    query: ConvoyQuery,
    stats: Optional[MiningStats] = None,
) -> List[Cluster]:
    """(m,eps)-clusters of the full snapshot at benchmark point ``t``."""
    oids, xs, ys = source.snapshot(t)
    if stats is not None:
        stats.add_points("benchmark_clustering", len(oids))
    return cluster_snapshot(oids, xs, ys, query.eps, query.m)


def intersect_cluster_sets(
    left: Sequence[Cluster], right: Sequence[Cluster], m: int
) -> List[Cluster]:
    """Set-wise intersection ``C_i ∩set C_{i+1}`` keeping sets of size >= m.

    Clusters at one timestamp are disjoint, so each left cluster can overlap
    each right cluster in at most one candidate; exact duplicates across
    pairs are impossible, but we deduplicate defensively anyway.
    """
    if use_scalar():
        return intersect_cluster_sets_scalar(left, right, m)
    interner = ObjectInterner()
    left_masks = interner.masks_of(left)
    right_masks = interner.masks_of(right)
    seen = set()
    candidates: List[Cluster] = []
    for li in left_masks:
        for rj in right_masks:
            inter = li & rj
            if inter.bit_count() >= m and inter not in seen:
                seen.add(inter)
                candidates.append(interner.cluster_of(inter))
    return sorted(candidates, key=lambda c: min(c))


def intersect_cluster_sets_scalar(
    left: Sequence[Cluster], right: Sequence[Cluster], m: int
) -> List[Cluster]:
    """Frozenset intersection loop (the original implementation; oracle)."""
    seen = set()
    candidates: List[Cluster] = []
    for ci in left:
        for cj in right:
            inter = ci & cj
            if len(inter) >= m and inter not in seen:
                seen.add(inter)
                candidates.append(inter)
    return sorted(candidates, key=lambda c: min(c))
