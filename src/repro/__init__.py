"""repro — reproduction of "k/2-hop: Fast Mining of Convoy Patterns With
Effective Pruning" (Orakzai, Calders, Pedersen; PVLDB 12(9), 2019).

Quickstart::

    from repro import mine_convoys, plant_convoys

    workload = plant_convoys(n_convoys=3, seed=1)
    result = mine_convoys(workload.dataset, m=3, k=10, eps=workload.eps)
    for convoy in result:
        print(convoy)
"""

from .core import (
    Convoy,
    ConvoyEngine,
    ConvoyQuery,
    K2Hop,
    MiningResult,
    MiningStats,
    TimeInterval,
    mine_convoys,
)
from .data import (
    Dataset,
    generate_brinkhoff,
    generate_tdrive,
    generate_trucks,
    plant_convoys,
    random_walk_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "Convoy",
    "ConvoyEngine",
    "ConvoyQuery",
    "Dataset",
    "K2Hop",
    "MiningResult",
    "MiningStats",
    "TimeInterval",
    "__version__",
    "generate_brinkhoff",
    "generate_tdrive",
    "generate_trucks",
    "mine_convoys",
    "plant_convoys",
    "random_walk_dataset",
]
