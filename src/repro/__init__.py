"""repro — reproduction of "k/2-hop: Fast Mining of Convoy Patterns With
Effective Pruning" (Orakzai, Calders, Pedersen; PVLDB 12(9), 2019).

Quickstart::

    from repro import ConvoySession
    from repro.data import plant_convoys

    workload = plant_convoys(n_convoys=3, seed=1)
    result = (
        ConvoySession.from_dataset(workload.dataset)
        .algorithm("k2hop")
        .params(m=3, k=10, eps=workload.eps)
        .mine()
    )
    for convoy in result:
        print(convoy)

The same session drives streaming (``.feed()``) and serving
(``.serve()``, ``ConvoySession.open``); ``repro.api.list_miners()``
enumerates every registered algorithm.
"""

import warnings

from .api import (
    ConvoyService,
    ConvoySession,
    MinerInfo,
    SessionResult,
    get_miner,
    list_miners,
    miner_names,
    register_miner,
)
from .core import (
    Convoy,
    ConvoyEngine,
    ConvoyQuery,
    K2Hop,
    MiningResult,
    MiningStats,
    TimeInterval,
)
from .data import (
    Dataset,
    generate_brinkhoff,
    generate_tdrive,
    generate_trucks,
    plant_convoys,
    random_walk_dataset,
)

__version__ = "1.1.0"

__all__ = [
    "Convoy",
    "ConvoyEngine",
    "ConvoyQuery",
    "ConvoyService",
    "ConvoySession",
    "Dataset",
    "K2Hop",
    "MinerInfo",
    "MiningResult",
    "MiningStats",
    "SessionResult",
    "TimeInterval",
    "__version__",
    "generate_brinkhoff",
    "generate_tdrive",
    "generate_trucks",
    "get_miner",
    "list_miners",
    "mine_convoys",
    "miner_names",
    "plant_convoys",
    "random_walk_dataset",
    "register_miner",
]

#: Old top-level entry points kept as deprecation shims: the attribute is
#: served lazily (PEP 562) so touching it warns exactly once per call site
#: while `repro.core.mine_convoys` stays warning-free for internal use.
_DEPRECATED_SHIMS = {
    "mine_convoys": (
        "repro.core",
        "mine with ConvoySession (repro.api) or import it from repro.core",
    ),
}


def __getattr__(name):
    shim = _DEPRECATED_SHIMS.get(name)
    if shim is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    home, advice = shim
    warnings.warn(
        f"`from repro import {name}` is deprecated; {advice}",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(home), name)
