"""Thread-safe metrics registry: counters, gauges, bucketed histograms.

The registry is the one sink every layer of the stack reports into —
mining phases, ingest timings, query-cache hit rates, storage I/O,
HTTP route latencies — and the one source every exposition reads from:
``GET /metrics`` (Prometheus text format), the richer ``/stats`` JSON
block, the ``repro-convoy stats`` CLI, and the bench journal.

Three instrument kinds, all safe under concurrent writers:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — a settable current value;
* :class:`Histogram` — bucketed latency/size distributions with
  estimated quantiles (p50/p95/p99 via linear interpolation inside the
  bucket holding the quantile).

Instruments may declare *label names*; ``instrument.labels(value, ...)``
returns (and caches) the child time series for one label combination,
exactly like the Prometheus client idiom.

**Hot paths cost nothing extra.**  Counters that already exist as plain
dataclass fields (``CacheStats``, ``IngestStats``, ``IOStats``,
``ServerStats``) are *not* double-counted on the hot path: their owners
register a **collector** — a callable sampled only at scrape/snapshot
time — so reading ``/metrics`` does the aggregation and the hot path
keeps its single attribute increment.  Duplicate samples from several
live instances (e.g. two open LSM stores) are merged: counters sum,
gauges take the max.

**No-op mode.**  A registry built with ``enabled=False`` (or the global
one with ``REPRO_METRICS=0`` in the environment) hands out shared null
instruments and allocates nothing; ``set_enabled(False)`` at runtime
turns every already-created instrument into a cheap flag-check no-op
and empties the expositions.
"""

from __future__ import annotations

import os
import re
import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram buckets (seconds): tuned for request/phase latencies
#: from ~0.1 ms to 10 s.  An implicit +Inf bucket always terminates them.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One exposition sample: ``(name, kind, help, labels, value)`` with
#: ``labels`` a tuple of ``(label_name, label_value)`` pairs.  Collectors
#: yield these.
Sample = Tuple[str, str, str, Tuple[Tuple[str, str], ...], float]


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (name, _escape_label(value)) for name, value in labels
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


class _Instrument:
    """Shared machinery: naming, labels, the enabled flag."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
    ):
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], "_Instrument"] = {}

    @property
    def enabled(self) -> bool:
        """Cheap hot-path check: callers may skip timing work when off."""
        return self._registry._enabled

    def labels(self, *values: Any) -> "_Instrument":
        """The child series for one label-value combination (cached)."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label(s) "
                f"{self.labelnames}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child(key)
                    self._children[key] = child
        return child

    def _make_child(self, key: Tuple[str, ...]) -> "_Instrument":
        child = type(self)(self._registry, self.name, self.help, ())
        child._labelvalues = key  # type: ignore[attr-defined]
        child.labelnames = self.labelnames
        return child

    def _label_pairs(self) -> Tuple[Tuple[str, str], ...]:
        values = getattr(self, "_labelvalues", ())
        return tuple(zip(self.labelnames, values))

    def _series(self) -> Iterable["_Instrument"]:
        """Every concrete series: self (unlabeled) or the children."""
        if self.labelnames and not getattr(self, "_labelvalues", ()):
            return list(self._children.values())
        return [self]


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, registry, name, help, labelnames):
        super().__init__(registry, name, help, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry._enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> List[Sample]:
        return [
            (self.name, self.kind, self.help, series._label_pairs(),
             series._value)  # type: ignore[attr-defined]
            for series in self._series()
        ]


class Gauge(_Instrument):
    """A value that can go up and down (or be computed at scrape time)."""

    kind = "gauge"

    def __init__(self, registry, name, help, labelnames, callback=None):
        super().__init__(registry, name, help, labelnames)
        self._value = 0.0
        self._callback: Optional[Callable[[], float]] = callback

    def set(self, value: float) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._callback is not None:
            try:
                return float(self._callback())
            except Exception:  # noqa: BLE001 — a dead callback reads 0
                return 0.0
        return self._value

    def samples(self) -> List[Sample]:
        return [
            (self.name, self.kind, self.help, series._label_pairs(),
             series.value)
            for series in self._series()
        ]


class Histogram(_Instrument):
    """Bucketed distribution with estimated quantiles.

    Buckets are *upper bounds* in ascending order; an implicit ``+Inf``
    bucket catches the tail.  :meth:`quantile` interpolates linearly
    inside the bucket containing the requested rank, so its error is
    bounded by the bucket width (property-tested against a sorted
    oracle in ``tests/test_obs_metrics.py``).
    """

    kind = "histogram"

    def __init__(self, registry, name, help, labelnames,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0

    def _make_child(self, key):
        child = Histogram(self._registry, self.name, self.help, (),
                          buckets=self.buckets)
        child._labelvalues = key
        child.labelnames = self.labelnames
        return child

    def observe(self, value: float) -> None:
        if not self._registry._enabled:
            return
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed wall time in seconds."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1] (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else self.buckets[-1]  # +Inf bucket: clamp to last edge
                )
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            cumulative += bucket_count
        return self.buckets[-1]

    def percentiles(self) -> Dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def samples(self) -> List[Sample]:
        """Prometheus histogram series: cumulative buckets + sum + count."""
        out: List[Sample] = []
        for series in self._series():
            base = series._label_pairs()
            with series._lock:
                counts = list(series._counts)  # type: ignore[attr-defined]
                total_sum = series._sum  # type: ignore[attr-defined]
            cumulative = 0
            for bound, bucket_count in zip(series.buckets, counts):
                cumulative += bucket_count
                out.append((
                    self.name + "_bucket", self.kind, self.help,
                    base + (("le", _format_value(bound)),), float(cumulative),
                ))
            cumulative += counts[-1]
            out.append((
                self.name + "_bucket", self.kind, self.help,
                base + (("le", "+Inf"),), float(cumulative),
            ))
            out.append((self.name + "_sum", self.kind, self.help, base,
                        total_sum))
            out.append((self.name + "_count", self.kind, self.help, base,
                        float(cumulative)))
        return out


class _HistogramTimer:
    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram

    def __enter__(self) -> "_HistogramTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class _NullInstrument:
    """Shared do-nothing instrument handed out by a disabled registry."""

    kind = "null"
    name = ""
    help = ""
    enabled = False
    buckets: Tuple[float, ...] = ()
    count = 0
    sum = 0.0
    value = 0.0

    def labels(self, *values):  # noqa: D102
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self):
        return _NULL_TIMER

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> Dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def samples(self):
        return []


class _NullTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_TIMER = _NullTimer()
NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments plus scrape-time collectors, one namespace.

    Creation is get-or-create: asking twice for the same name returns
    the same instrument (the kind and label names must agree), so module
    handles and late lookups cannot fork a series.
    """

    def __init__(self, enabled: bool = True):
        self._enabled = enabled
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Instrument]" = {}
        # Scrape-time collectors: (weakref-or-None, fn).  With an owner
        # weakref the collector dies with its owner; without one it
        # lives for the registry's lifetime (e.g. IOStats totals, which
        # must keep counting even after their store is closed).
        self._collectors: List[Tuple[Optional[Any], Callable]] = []
        self._iostats_seen: set = set()

    # -- lifecycle -------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        """Toggle every instrument (existing handles become no-ops)."""
        self._enabled = bool(enabled)

    # -- instrument factories --------------------------------------------------

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = (),
              callback: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get_or_create(
            Gauge, name, help, labelnames, callback=callback
        )
        if callback is not None and isinstance(gauge, Gauge):
            gauge._callback = callback
        return gauge

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        if not self._enabled:
            return NULL_INSTRUMENT
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"bad label name {label!r} on {name}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name} already registered with labels "
                        f"{existing.labelnames}, not {labelnames}"
                    )
                return existing
            instrument = cls(self, name, help, labelnames, **kwargs)
            self._metrics[name] = instrument
            return instrument

    # -- collectors ------------------------------------------------------------

    def register_collector(self, fn: Callable[[], Iterable[Sample]]) -> None:
        """A callable sampled at scrape time; lives as long as the registry."""
        if not self._enabled:
            return
        with self._lock:
            self._collectors.append((None, fn))

    def register_object_collector(
        self, owner: Any, fn: Callable[[Any], Iterable[Sample]]
    ) -> None:
        """Collector bound to ``owner`` by weakref; dies with the owner."""
        if not self._enabled:
            return
        import weakref

        with self._lock:
            self._collectors.append((weakref.ref(owner), fn))

    def register_iostats(self, backend: str, iostats: Any) -> None:
        """Expose one :class:`~repro.storage.interface.IOStats` forever.

        Holds a strong reference so closed stores keep contributing their
        final totals (counters must not go backwards).  Registering the
        same object twice — e.g. a B+tree store handing its stats to its
        pager — is a no-op.
        """
        if not self._enabled or id(iostats) in self._iostats_seen:
            return
        with self._lock:
            if id(iostats) in self._iostats_seen:
                return
            self._iostats_seen.add(id(iostats))
            labels = (("backend", backend),)

            def collect(stats=iostats, labels=labels) -> List[Sample]:
                help_ = "Physical I/O of the storage backends."
                return [
                    ("repro_storage_%s_total" % field, "counter", help_,
                     labels, float(getattr(stats, field)))
                    for field in (
                        "pages_read", "pages_written", "bytes_read",
                        "bytes_written", "seeks", "range_scans",
                        "point_queries", "full_scans", "buffer_hits",
                        "buffer_misses", "compaction_drops",
                    )
                ]

            self._collectors.append((None, collect))

    def _collect(self) -> List[Sample]:
        """All samples: instruments plus live collectors (dead ones pruned)."""
        samples: List[Sample] = []
        with self._lock:
            instruments = list(self._metrics.values())
            collectors = list(self._collectors)
        for instrument in instruments:
            samples.extend(instrument.samples())
        dead = []
        for entry in collectors:
            ref, fn = entry
            if ref is not None:
                owner = ref()
                if owner is None:
                    dead.append(entry)
                    continue
                samples.extend(fn(owner))
            else:
                samples.extend(fn())
        if dead:
            with self._lock:
                self._collectors = [
                    entry for entry in self._collectors if entry not in dead
                ]
        return samples

    def _aggregated(self) -> "Dict[Tuple[str, Tuple], Tuple[str, str, float]]":
        """Samples merged by (name, labels): counters sum, gauges max."""
        merged: Dict[Tuple[str, Tuple], Tuple[str, str, float]] = {}
        for name, kind, help_, labels, value in self._collect():
            key = (name, labels)
            if key in merged:
                _, _, existing = merged[key]
                combined = (
                    max(existing, value) if kind == "gauge"
                    else existing + value
                )
                merged[key] = (kind, help_, combined)
            else:
                merged[key] = (kind, help_, value)
        return merged

    # -- exposition ------------------------------------------------------------

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def value(self, name: str, labels: Optional[Dict[str, str]] = None) -> float:
        """Current value of a metric, summed across matching series.

        Includes collector-backed samples, so e.g. the query-cache hit
        counters are readable here even though the hot path never
        touches a registry counter.
        """
        wanted = tuple(sorted((labels or {}).items()))
        total = 0.0
        found = False
        for (sample_name, sample_labels), (_, _, value) in (
            self._aggregated().items()
        ):
            if sample_name != name:
                continue
            if wanted and tuple(sorted(sample_labels)) != wanted:
                continue
            total += value
            found = True
        return total if found else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly view: counters, gauges, histogram summaries."""
        if not self._enabled:
            return {"counters": {}, "gauges": {}, "histograms": {}}
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        for (name, labels), (kind, _, value) in self._aggregated().items():
            if kind == "histogram":
                continue  # summarised below, not as raw bucket series
            key = name + _format_labels(labels)
            if kind == "gauge":
                gauges[key] = value
            else:
                counters[key] = value
        histograms: Dict[str, Dict[str, float]] = {}
        with self._lock:
            instruments = list(self._metrics.values())
        for instrument in instruments:
            if not isinstance(instrument, Histogram):
                continue
            for series in instrument._series():
                key = instrument.name + _format_labels(series._label_pairs())
                histograms[key] = {
                    "count": series.count,
                    "sum": series.sum,
                    **series.percentiles(),
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        if not self._enabled:
            return ""
        # Group samples by metric family (histogram _bucket/_sum/_count
        # collapse to one family); HELP/TYPE precede each family once.
        families: Dict[str, List[Tuple[str, Tuple, float]]] = {}
        meta: Dict[str, Tuple[str, str]] = {}
        for (name, labels), (kind, help_, value) in self._aggregated().items():
            family = _histogram_family(name, kind)
            families.setdefault(family, []).append((name, labels, value))
            meta.setdefault(family, (kind, help_))
        lines: List[str] = []
        for family in sorted(families):
            kind, help_ = meta[family]
            if help_:
                lines.append(f"# HELP {family} {help_}")
            lines.append(f"# TYPE {family} {kind}")
            for name, labels, value in sorted(
                families[family], key=_sample_sort_key
            ):
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _histogram_family(name: str, kind: str) -> str:
    if kind != "histogram":
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def _sample_sort_key(row: Tuple[str, Tuple, float]) -> Tuple:
    """Keep each series' buckets ascending (by le) before _sum/_count."""
    name, labels, _ = row
    label_map = dict(labels)
    le = label_map.pop("le", None)
    le_key = (
        (0, float("inf")) if le == "+Inf"
        else (0, float(le)) if le is not None
        else (1, 0.0)
    )
    return (tuple(sorted(label_map.items())), name, le_key)
