"""Process-level resource probes (no psutil dependency).

Used by the server's health states and the soak harness to watch
resident memory on platforms exposing ``/proc``; elsewhere the probes
degrade to 0 rather than fail.
"""

from __future__ import annotations


def rss_bytes() -> int:
    """Resident set size of this process in bytes (0 if unknown)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return 0
