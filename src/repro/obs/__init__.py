"""Observability: the process-wide metrics registry and tracer.

``repro.obs`` deliberately imports nothing from the rest of ``repro``
so every layer (core, service, storage, server) can depend on it
without cycles.  The module-level singletons are the ones the whole
stack reports into:

* :data:`METRICS` — the global :class:`~repro.obs.metrics.MetricsRegistry`.
  Disable it up front with ``REPRO_METRICS=0`` in the environment
  (instruments become shared no-op nulls; nothing is allocated), or at
  runtime with :func:`set_enabled` (live instruments become flag-check
  no-ops).
* :data:`TRACER` — the global :class:`~repro.obs.tracing.Tracer`
  holding the recent-trace ring buffer and the slow log.
"""

from __future__ import annotations

import os

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .proc import rss_bytes
from .tracing import TRACE_HEADER, Tracer, current_trace_id, new_trace_id

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "TRACE_HEADER",
    "TRACER",
    "Tracer",
    "current_trace_id",
    "new_trace_id",
    "rss_bytes",
    "set_enabled",
]

_ENABLED = os.environ.get("REPRO_METRICS", "1").lower() not in (
    "0", "off", "false", "no",
)

METRICS = MetricsRegistry(enabled=_ENABLED)
TRACER = Tracer()


def set_enabled(enabled: bool) -> None:
    """Toggle metrics collection globally at runtime."""
    METRICS.set_enabled(enabled)
