"""Lightweight request tracing: contextvar trace ids, spans, slow log.

A *trace* is one logical request — an HTTP call, an ingest tick, a
mining run.  The server opens it (propagating the client's
``X-Trace-Id`` header when present), and every layer underneath adds
*spans* (named timed sections) to whatever trace is active in the
current :mod:`contextvars` context.  Because the server copies its
context into executor jobs, spans recorded inside worker threads attach
to the right request.

Completed traces land in a bounded ring buffer (:meth:`Tracer.recent`);
traces slower than a threshold additionally go to a second ring buffer
(:meth:`Tracer.slow`) *and* are emitted as a structured JSON line on
the ``repro.obs.slow`` logger — the slow-query log.

When no trace is active, ``span()`` returns a shared null span, so
instrumented library code costs ~a dict lookup outside a request.
"""

from __future__ import annotations

import contextvars
import json
import logging
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

__all__ = [
    "TRACE_HEADER",
    "Tracer",
    "current_trace_id",
    "new_trace_id",
]

#: HTTP header carrying (and echoing back) the trace id.
TRACE_HEADER = "X-Trace-Id"

_slow_log = logging.getLogger("repro.obs.slow")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


class _Trace:
    __slots__ = ("trace_id", "name", "started_at", "_t0", "spans", "_lock")

    def __init__(self, name: str, trace_id: str):
        self.trace_id = trace_id
        self.name = name
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.spans: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def add_span(self, name: str, offset_ms: float, duration_ms: float,
                 detail: Dict[str, Any]) -> None:
        with self._lock:
            if len(self.spans) < 256:  # bound memory per trace
                self.spans.append({
                    "name": name,
                    "offset_ms": round(offset_ms, 3),
                    "duration_ms": round(duration_ms, 3),
                    **({"detail": detail} if detail else {}),
                })


_current_trace: "contextvars.ContextVar[Optional[_Trace]]" = (
    contextvars.ContextVar("repro_obs_trace", default=None)
)


def current_trace_id() -> Optional[str]:
    """Trace id active in this context, or None outside a trace."""
    trace = _current_trace.get()
    return trace.trace_id if trace is not None else None


class _Span:
    __slots__ = ("_trace", "_name", "_detail", "_started")

    def __init__(self, trace: _Trace, name: str, detail: Dict[str, Any]):
        self._trace = trace
        self._name = name
        self._detail = detail

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        now = time.perf_counter()
        self._trace.add_span(
            self._name,
            (self._started - self._trace._t0) * 1000.0,
            (now - self._started) * 1000.0,
            self._detail,
        )


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Ring buffer of recent traces plus a structured slow log."""

    def __init__(self, capacity: int = 256,
                 slow_threshold_ms: Optional[float] = None,
                 slow_capacity: int = 128):
        if slow_threshold_ms is None:
            import os

            slow_threshold_ms = float(os.environ.get("REPRO_SLOW_MS", "100"))
        self.capacity = capacity
        self.slow_threshold_ms = slow_threshold_ms
        self._lock = threading.Lock()
        self._recent: List[Dict[str, Any]] = []
        self._slow: List[Dict[str, Any]] = []
        self._slow_capacity = slow_capacity

    @contextmanager
    def trace(self, name: str, trace_id: Optional[str] = None):
        """Open a trace for the duration of the block.

        Nested calls join the existing trace rather than opening a new
        one, so an ingest tick inside a traced HTTP request records its
        spans into the request's trace.
        """
        existing = _current_trace.get()
        if existing is not None:
            with self.span(name):
                yield existing.trace_id
            return
        trace = _Trace(name, trace_id or new_trace_id())
        token = _current_trace.set(trace)
        error: Optional[str] = None
        try:
            yield trace.trace_id
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            _current_trace.reset(token)
            duration_ms = (time.perf_counter() - trace._t0) * 1000.0
            self._finish(trace, duration_ms, error)

    def span(self, name: str, **detail: Any):
        """A timed section inside the active trace (no-op outside one)."""
        trace = _current_trace.get()
        if trace is None:
            return _NULL_SPAN
        return _Span(trace, name, detail)

    def _finish(self, trace: _Trace, duration_ms: float,
                error: Optional[str]) -> None:
        record = {
            "trace_id": trace.trace_id,
            "name": trace.name,
            "started_at": trace.started_at,
            "duration_ms": round(duration_ms, 3),
            "spans": list(trace.spans),
        }
        if error:
            record["error"] = error
        with self._lock:
            self._recent.append(record)
            if len(self._recent) > self.capacity:
                del self._recent[: len(self._recent) - self.capacity]
            if duration_ms >= self.slow_threshold_ms:
                self._slow.append(record)
                if len(self._slow) > self._slow_capacity:
                    del self._slow[: len(self._slow) - self._slow_capacity]
        if duration_ms >= self.slow_threshold_ms:
            try:
                _slow_log.warning("%s", json.dumps(record, default=str))
            # lint: disable=silent-except — a failed slow-log line is dropped; observability must never take the request path down
            except Exception:  # noqa: BLE001 — logging must never raise
                pass

    def recent(self, n: int = 20) -> List[Dict[str, Any]]:
        """The last ``n`` completed traces, newest last."""
        with self._lock:
            return [dict(r) for r in self._recent[-n:]]

    def slow(self, n: int = 20) -> List[Dict[str, Any]]:
        """The last ``n`` traces over the slow threshold, newest last."""
        with self._lock:
            return [dict(r) for r in self._slow[-n:]]

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._slow.clear()
