"""Resampling irregular trajectories onto a regular tick grid.

The T-Drive taxi dataset has an average sampling interval of ~177 s; the
paper interpolates it (15M points become 29M).  This module provides the
same preprocessing for our irregularly-sampled generators: per object,
positions are linearly interpolated at every integer tick between its first
and last observation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .dataset import Dataset


def interpolate_dataset(dataset: Dataset, max_gap: int = 0) -> Dataset:
    """Linearly resample every object onto consecutive integer ticks.

    Parameters
    ----------
    dataset:
        Input with arbitrary (possibly irregular) integer timestamps.
    max_gap:
        If positive, gaps longer than ``max_gap`` ticks are *not* filled —
        the trajectory is split there instead (a taxi switched off its
        receiver; inventing an hour of positions would fabricate convoys).
    """
    if not len(dataset):
        return dataset
    out_oids: List[np.ndarray] = []
    out_ts: List[np.ndarray] = []
    out_xs: List[np.ndarray] = []
    out_ys: List[np.ndarray] = []
    for oid, (ts, xs, ys) in _group_by_object(dataset).items():
        for seg_ts, seg_xs, seg_ys in _split_on_gaps(ts, xs, ys, max_gap):
            ticks = np.arange(seg_ts[0], seg_ts[-1] + 1, dtype=np.int64)
            out_oids.append(np.full(len(ticks), oid, dtype=np.int64))
            out_ts.append(ticks)
            out_xs.append(np.interp(ticks, seg_ts, seg_xs))
            out_ys.append(np.interp(ticks, seg_ts, seg_ys))
    return Dataset(
        np.concatenate(out_oids),
        np.concatenate(out_ts),
        np.concatenate(out_xs),
        np.concatenate(out_ys),
    )


def _group_by_object(
    dataset: Dataset,
) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per-object time-sorted (ts, xs, ys) arrays, deduplicated by tick."""
    order = np.lexsort((dataset.ts, dataset.oids))
    oids = dataset.oids[order]
    ts = dataset.ts[order]
    xs = dataset.xs[order]
    ys = dataset.ys[order]
    groups: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    boundaries = np.flatnonzero(np.diff(oids)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(oids)]])
    for lo, hi in zip(starts.tolist(), ends.tolist()):
        seg_ts = ts[lo:hi]
        # Keep the last fix when an object reports twice in one tick.
        keep = np.concatenate([np.diff(seg_ts) > 0, [True]])
        groups[int(oids[lo])] = (seg_ts[keep], xs[lo:hi][keep], ys[lo:hi][keep])
    return groups


def _split_on_gaps(ts: np.ndarray, xs: np.ndarray, ys: np.ndarray, max_gap: int):
    """Yield (ts, xs, ys) segments, split where gaps exceed ``max_gap``."""
    if max_gap <= 0 or len(ts) < 2:
        yield ts, xs, ys
        return
    cut = np.flatnonzero(np.diff(ts) > max_gap) + 1
    for lo, hi in zip(
        np.concatenate([[0], cut]).tolist(),
        np.concatenate([cut, [len(ts)]]).tolist(),
    ):
        yield ts[lo:hi], xs[lo:hi], ys[lo:hi]
