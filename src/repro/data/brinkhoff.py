"""Brinkhoff-style network-based moving-object generator.

Re-implements the behaviour the paper relies on (§6.2.3): objects appear over
time, pick random destinations, follow travel-time shortest paths through a
road network at edge-class speeds, and disappear on arrival (or re-route,
keeping the population alive).  "External objects" move freely off-network,
as in the original generator.

Parameters mirror Table 4's vocabulary: ``obj_begin`` objects at time zero,
``obj_per_time`` new objects per tick, ``max_time`` ticks, plus the external
object knobs.  Scale is configurable; the defaults are laptop-sized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .dataset import Dataset
from .roadnet import RoadNetwork, generate_road_network


@dataclass
class BrinkhoffConfig:
    """Generator knobs (names follow the original generator / Table 4)."""

    max_time: int = 200
    obj_begin: int = 100
    obj_per_time: int = 4
    ext_obj_begin: int = 4
    ext_obj_per_time: int = 0
    #: Objects travel this many route legs before retiring.
    routes_per_object: int = 2
    #: Base distance covered per tick at speed 1.0 (scales edge speeds).
    speed_scale: float = 3.0
    seed: int = 13
    network: Optional[RoadNetwork] = None


@dataclass
class _Traveler:
    """One on-network object following a node path."""

    oid: int
    path: List[int]
    leg: int  # index of the current edge's source node within path
    offset: float  # distance progressed along the current edge
    routes_left: int


class BrinkhoffGenerator:
    """Network-based moving-object generator."""

    def __init__(self, config: Optional[BrinkhoffConfig] = None):
        self.config = config or BrinkhoffConfig()
        self.network = self.config.network or generate_road_network(
            seed=self.config.seed
        )

    def generate(self) -> Dataset:
        """Run the simulation and return the point table."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        oids: List[int] = []
        ts: List[int] = []
        xs: List[float] = []
        ys: List[float] = []
        travelers: List[_Traveler] = []
        externals: List[Tuple[int, float, float, float, float]] = []
        next_oid = 0

        def spawn_traveler() -> None:
            nonlocal next_oid
            path = self._random_route(rng)
            travelers.append(
                _Traveler(
                    oid=next_oid,
                    path=path,
                    leg=0,
                    offset=0.0,
                    routes_left=cfg.routes_per_object,
                )
            )
            next_oid += 1

        def spawn_external() -> None:
            nonlocal next_oid
            x = float(rng.uniform(0, self.network.width))
            y = float(rng.uniform(0, self.network.height))
            angle = float(rng.uniform(0, 2 * np.pi))
            speed = float(rng.uniform(10.0, 40.0))
            externals.append(
                (next_oid, x, y, speed * np.cos(angle), speed * np.sin(angle))
            )
            next_oid += 1

        for _ in range(cfg.obj_begin):
            spawn_traveler()
        for _ in range(cfg.ext_obj_begin):
            spawn_external()

        for tick in range(cfg.max_time):
            if tick > 0:
                for _ in range(cfg.obj_per_time):
                    spawn_traveler()
                for _ in range(cfg.ext_obj_per_time):
                    spawn_external()
            survivors: List[_Traveler] = []
            for traveler in travelers:
                x, y = self._advance(traveler, rng)
                oids.append(traveler.oid)
                ts.append(tick)
                xs.append(x)
                ys.append(y)
                if traveler.leg < len(traveler.path) - 1 or traveler.routes_left > 0:
                    survivors.append(traveler)
            travelers = survivors
            next_externals = []
            for oid, x, y, vx, vy in externals:
                oids.append(oid)
                ts.append(tick)
                xs.append(x)
                ys.append(y)
                nx_, ny_ = x + vx, y + vy
                # Bounce off the data-space boundary.
                if not 0 <= nx_ <= self.network.width:
                    vx = -vx
                    nx_ = x + vx
                if not 0 <= ny_ <= self.network.height:
                    vy = -vy
                    ny_ = y + vy
                next_externals.append((oid, nx_, ny_, vx, vy))
            externals = next_externals

        return Dataset(np.array(oids), np.array(ts), np.array(xs), np.array(ys))

    # -- internals -----------------------------------------------------------

    def _random_route(self, rng: np.random.Generator) -> List[int]:
        source = self.network.random_node(rng)
        target = self.network.random_node(rng)
        while target == source:
            target = self.network.random_node(rng)
        return self.network.shortest_path(source, target)

    def _advance(
        self, traveler: _Traveler, rng: np.random.Generator
    ) -> Tuple[float, float]:
        """Move one tick along the path; return the position reported.

        The per-tick distance budget is set by the speed of the edge the
        object starts the tick on and is consumed across edge crossings.
        """
        path = traveler.path
        budget: Optional[float] = None
        while True:
            if traveler.leg >= len(path) - 1:
                # Arrived; start a new route from here if any remain.
                if traveler.routes_left > 0:
                    traveler.routes_left -= 1
                    new_target = self.network.random_node(rng)
                    if new_target != path[-1]:
                        traveler.path = self.network.shortest_path(
                            path[-1], new_target
                        )
                        traveler.leg = 0
                        traveler.offset = 0.0
                        path = traveler.path
                        continue
                return self.network.node_position(path[-1])
            u, v = path[traveler.leg], path[traveler.leg + 1]
            length = self.network.edge_length(u, v)
            if budget is None:
                speed = self.network.edge_speed(u, v)
                budget = speed / 30.0 * self.config.speed_scale
            if traveler.offset + budget < length:
                traveler.offset += budget
                ux, uy = self.network.node_position(u)
                vx, vy = self.network.node_position(v)
                frac = traveler.offset / length
                return (ux + (vx - ux) * frac, uy + (vy - uy) * frac)
            budget -= length - traveler.offset
            traveler.offset = 0.0
            traveler.leg += 1


def generate_brinkhoff(
    *,
    max_time: int = 200,
    obj_begin: int = 100,
    obj_per_time: int = 4,
    seed: int = 13,
    network: Optional[RoadNetwork] = None,
) -> Dataset:
    """One-call convenience wrapper around :class:`BrinkhoffGenerator`."""
    config = BrinkhoffConfig(
        max_time=max_time,
        obj_begin=obj_begin,
        obj_per_time=obj_per_time,
        seed=seed,
        network=network,
    )
    return BrinkhoffGenerator(config).generate()
