"""T-Drive-like workload (substitute for the Beijing taxi GPS dataset).

The real dataset: 10,357 taxis over a week, average sampling interval 177 s,
interpolated from 15M to 29M points (§6.2.2).  We reproduce the pipeline at
configurable scale: a taxi fleet roams a Brinkhoff-style road network,
reports positions *irregularly* (geometric inter-report gaps), and the raw
feed is linearly interpolated onto the tick grid — exactly the preprocessing
the paper applies.  Dense traffic on shared corridors yields the moderate
convoy density that drives the T-Drive experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .brinkhoff import BrinkhoffConfig, BrinkhoffGenerator
from .dataset import Dataset
from .interpolate import interpolate_dataset
from .roadnet import RoadNetwork, generate_road_network


@dataclass
class TDriveConfig:
    n_taxis: int = 120
    duration: int = 150
    #: Mean gap between successive GPS reports, in ticks.
    mean_report_gap: float = 3.0
    seed: int = 33
    network: Optional[RoadNetwork] = None


def generate_tdrive(config: Optional[TDriveConfig] = None) -> Dataset:
    """Generate the taxi workload: simulate, subsample irregularly, interpolate."""
    cfg = config or TDriveConfig()
    network = cfg.network or generate_road_network(
        grid_size=10, width=20_000.0, height=20_000.0, seed=cfg.seed
    )
    base = BrinkhoffGenerator(
        BrinkhoffConfig(
            max_time=cfg.duration,
            obj_begin=cfg.n_taxis,
            obj_per_time=0,
            ext_obj_begin=0,
            routes_per_object=8,
            speed_scale=4.0,
            seed=cfg.seed,
            network=network,
        )
    ).generate()
    sampled = _subsample_irregular(base, cfg.mean_report_gap, cfg.seed)
    return interpolate_dataset(sampled, max_gap=int(cfg.mean_report_gap * 6))


def _subsample_irregular(dataset: Dataset, mean_gap: float, seed: int) -> Dataset:
    """Keep each object's reports at geometric random intervals."""
    if mean_gap <= 1.0:
        return dataset
    rng = np.random.default_rng(seed)
    keep_prob = 1.0 / mean_gap
    keep = rng.random(len(dataset)) < keep_prob
    # Always keep each object's first and last fix so interpolation spans
    # the full trajectory.
    firsts: dict = {}
    lasts: dict = {}
    for i, oid in enumerate(dataset.oids.tolist()):
        if oid not in firsts:
            firsts[oid] = i
        lasts[oid] = i
    keep[list(firsts.values())] = True
    keep[list(lasts.values())] = True
    return Dataset(
        dataset.oids[keep], dataset.ts[keep], dataset.xs[keep], dataset.ys[keep],
        presorted=True,
    )
