"""Synthetic planar road networks for the Brinkhoff-style generator.

The original generator runs on the Oldenburg road map; we build a comparable
structure: a jittered grid of nodes with 4-neighbor connectivity, thinned by
random edge removal (keeping the graph connected) and augmented with a few
diagonal "highways".  Edge classes carry speed limits, as in Brinkhoff's
network classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

NodeId = int


@dataclass(frozen=True)
class RoadNetwork:
    """An undirected road graph with node coordinates and edge speeds."""

    graph: nx.Graph
    positions: Dict[NodeId, Tuple[float, float]]
    width: float
    height: float

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def edge_length(self, u: NodeId, v: NodeId) -> float:
        return float(self.graph.edges[u, v]["length"])

    def edge_speed(self, u: NodeId, v: NodeId) -> float:
        return float(self.graph.edges[u, v]["speed"])

    def node_position(self, node: NodeId) -> Tuple[float, float]:
        return self.positions[node]

    def shortest_path(self, source: NodeId, target: NodeId) -> List[NodeId]:
        """Travel-time shortest path (Dijkstra on length/speed weights)."""
        return nx.shortest_path(self.graph, source, target, weight="travel_time")

    def random_node(self, rng: np.random.Generator) -> NodeId:
        return int(rng.integers(self.num_nodes))


def generate_road_network(
    *,
    grid_size: int = 12,
    width: float = 10_000.0,
    height: float = 10_000.0,
    removal_fraction: float = 0.15,
    highway_count: int = 6,
    seed: int = 7,
) -> RoadNetwork:
    """Build a connected planar-ish road network.

    ``grid_size`` x ``grid_size`` jittered intersections; ~``removal_fraction``
    of local streets removed (never disconnecting); ``highway_count`` long
    fast edges added between distant nodes.
    """
    if grid_size < 2:
        raise ValueError("grid_size must be >= 2")
    rng = np.random.default_rng(seed)
    graph = nx.Graph()
    positions: Dict[NodeId, Tuple[float, float]] = {}
    step_x = width / (grid_size - 1)
    step_y = height / (grid_size - 1)

    def node_id(i: int, j: int) -> int:
        return i * grid_size + j

    for i in range(grid_size):
        for j in range(grid_size):
            jitter_x = float(rng.uniform(-0.25, 0.25) * step_x)
            jitter_y = float(rng.uniform(-0.25, 0.25) * step_y)
            x = min(max(i * step_x + jitter_x, 0.0), width)
            y = min(max(j * step_y + jitter_y, 0.0), height)
            node = node_id(i, j)
            graph.add_node(node)
            positions[node] = (x, y)

    def add_edge(u: int, v: int, speed: float) -> None:
        ux, uy = positions[u]
        vx, vy = positions[v]
        length = float(np.hypot(vx - ux, vy - uy))
        graph.add_edge(u, v, length=length, speed=speed,
                       travel_time=length / speed)

    street_speed, avenue_speed, highway_speed = 30.0, 60.0, 120.0
    for i in range(grid_size):
        for j in range(grid_size):
            # Alternate street/avenue speeds to create preferred corridors.
            if i + 1 < grid_size:
                speed = avenue_speed if j % 3 == 0 else street_speed
                add_edge(node_id(i, j), node_id(i + 1, j), speed)
            if j + 1 < grid_size:
                speed = avenue_speed if i % 3 == 0 else street_speed
                add_edge(node_id(i, j), node_id(i, j + 1), speed)

    # Thin the grid without disconnecting it.
    edges = list(graph.edges)
    rng.shuffle(edges)
    to_remove = int(len(edges) * removal_fraction)
    for u, v in edges[:to_remove]:
        data = dict(graph.edges[u, v])
        graph.remove_edge(u, v)
        if not nx.is_connected(graph):
            graph.add_edge(u, v, **data)

    # A few fast long-range highways.
    nodes = list(graph.nodes)
    for _ in range(highway_count):
        u, v = rng.choice(nodes, size=2, replace=False)
        if u != v and not graph.has_edge(int(u), int(v)):
            add_edge(int(u), int(v), highway_speed)

    return RoadNetwork(graph=graph, positions=positions, width=width, height=height)
