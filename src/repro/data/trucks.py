"""Trucks-like workload (substitute for the Athens concrete-trucks dataset).

The real dataset: 50 trucks, 33 days, ~30 s sampling, 276 day-trajectories,
each day of a truck treated as a distinct object (§6.2.1).  We reproduce the
regime: a small fleet shuttling between a depot and a handful of construction
sites on a shared road network, day-split into separate object ids.  Trucks
leaving the depot within a few ticks of each other naturally convoy along
shared corridors — the same mechanism that creates convoys in the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .dataset import Dataset
from .roadnet import RoadNetwork, generate_road_network


@dataclass
class TrucksConfig:
    n_trucks: int = 12
    n_days: int = 4
    day_length: int = 120
    n_sites: int = 5
    #: Distance per tick along routes.
    speed: float = 60.0
    #: Jitter applied to reported positions (GPS noise), in map units.
    gps_noise: float = 3.0
    seed: int = 21
    network: Optional[RoadNetwork] = None


def generate_trucks(config: Optional[TrucksConfig] = None) -> Dataset:
    """Generate the trucks-like dataset.

    Object ids encode (truck, day): day ``d`` of truck ``i`` is object
    ``d * n_trucks + i``, mirroring the paper's day-splitting trick that
    multiplies the object count.  All days share one continuous time axis
    (day ``d`` occupies ticks ``[d * day_length, (d+1) * day_length)``)
    so convoys can only form within a day, as in the original experiments.
    """
    cfg = config or TrucksConfig()
    rng = np.random.default_rng(cfg.seed)
    network = cfg.network or generate_road_network(
        grid_size=8, width=6_000.0, height=6_000.0, seed=cfg.seed
    )
    depot = network.random_node(rng)
    sites = [network.random_node(rng) for _ in range(cfg.n_sites)]

    oids: List[int] = []
    ts: List[int] = []
    xs: List[float] = []
    ys: List[float] = []

    for day in range(cfg.n_days):
        day_start = day * cfg.day_length
        for truck in range(cfg.n_trucks):
            oid = day * cfg.n_trucks + truck
            # Trucks leave the depot in small waves => shared corridors.
            departure = int(rng.integers(0, 6)) + (truck % 3) * 2
            site = sites[int(rng.integers(len(sites)))]
            route = network.shortest_path(depot, site)
            positions = _route_positions(network, route, cfg.speed)
            # Out to the site, pause, and return (reversed route).
            pause = int(rng.integers(3, 9))
            schedule = (
                [positions[0]] * departure
                + positions
                + [positions[-1]] * pause
                + positions[::-1]
            )
            for offset in range(cfg.day_length):
                pos = schedule[offset] if offset < len(schedule) else schedule[-1]
                noise = rng.normal(0.0, cfg.gps_noise, size=2)
                oids.append(oid)
                ts.append(day_start + offset)
                xs.append(float(pos[0] + noise[0]))
                ys.append(float(pos[1] + noise[1]))

    return Dataset(np.array(oids), np.array(ts), np.array(xs), np.array(ys))


def _route_positions(network: RoadNetwork, route: List[int], speed: float):
    """Positions at one-tick intervals along a node path at fixed speed."""
    points = [np.asarray(network.node_position(n), dtype=np.float64) for n in route]
    positions = [points[0]]
    leg, offset = 0, 0.0
    while leg < len(points) - 1:
        offset += speed
        while leg < len(points) - 1:
            length = float(np.linalg.norm(points[leg + 1] - points[leg]))
            if offset < length or length == 0.0:
                break
            offset -= length
            leg += 1
        if leg >= len(points) - 1:
            positions.append(points[-1])
            break
        direction = points[leg + 1] - points[leg]
        length = float(np.linalg.norm(direction))
        positions.append(points[leg] + direction * (offset / length))
    return [tuple(p) for p in positions]
