"""Convoy planter: synthetic workloads with known ground truth.

Plants ``n_convoys`` groups of objects that move together (within a tight
jitter radius) for a chosen duration, embedded in a sea of random-walk noise
objects.  The planted convoys are returned alongside the dataset so tests
can assert recall, and Figure 8k's "effect of convoy count" bench can sweep
the number of convoys while holding everything else fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.types import Convoy
from .dataset import Dataset


@dataclass
class PlantedWorkload:
    """A generated dataset plus its planted ground-truth convoys."""

    dataset: Dataset
    convoys: List[Convoy]
    eps: float


def plant_convoys(
    *,
    n_convoys: int = 4,
    convoy_size: int = 4,
    convoy_duration: int = 20,
    n_noise: int = 40,
    duration: int = 100,
    extent: float = 1_000.0,
    eps: float = 10.0,
    jitter: float = 2.0,
    noise_step: float = 15.0,
    seed: int = 0,
) -> PlantedWorkload:
    """Generate a workload with ``n_convoys`` planted convoys.

    Each convoy's members stay within ``jitter`` (<< eps) of a common moving
    anchor for ``convoy_duration`` consecutive ticks; before and after, the
    members scatter far apart so the convoy's lifespan is exactly what was
    planted.  Noise objects random-walk with steps larger than ``eps`` so
    they rarely form (m, eps)-clusters of their own for long.
    """
    if convoy_duration > duration:
        raise ValueError("convoy_duration cannot exceed the dataset duration")
    if jitter * 2 >= eps:
        raise ValueError("jitter must be well below eps to guarantee clustering")
    rng = np.random.default_rng(seed)
    oids: List[int] = []
    ts: List[int] = []
    xs: List[float] = []
    ys: List[float] = []
    truth: List[Convoy] = []
    next_oid = 0
    # Spread convoy anchors far apart so planted convoys never merge.
    anchor_grid = max(1, int(np.ceil(np.sqrt(max(n_convoys, 1)))))
    cell = extent / anchor_grid

    for c in range(n_convoys):
        members = list(range(next_oid, next_oid + convoy_size))
        next_oid += convoy_size
        start = int(rng.integers(0, duration - convoy_duration + 1))
        end = start + convoy_duration - 1
        gx, gy = divmod(c, anchor_grid)
        anchor = np.array(
            [gx * cell + cell / 2.0, gy * cell + cell / 2.0], dtype=np.float64
        )
        velocity = rng.uniform(-3.0, 3.0, size=2)
        member_offsets = rng.uniform(-jitter, jitter, size=(convoy_size, 2))
        for t in range(duration):
            if start <= t <= end:
                center = anchor + velocity * (t - start)
                for oid, offset in zip(members, member_offsets):
                    pos = center + offset
                    oids.append(oid)
                    ts.append(t)
                    xs.append(float(pos[0]))
                    ys.append(float(pos[1]))
            else:
                # Scatter members far apart (outside eps of each other).
                for idx, oid in enumerate(members):
                    scatter = anchor + np.array(
                        [
                            (idx + 1) * 20.0 * eps * (1 if t < start else -1),
                            (t % 7) * 3.0 * eps + (idx + 1) * 5.0 * eps,
                        ]
                    )
                    oids.append(oid)
                    ts.append(t)
                    xs.append(float(scatter[0]))
                    ys.append(float(scatter[1]))
        truth.append(Convoy.of(members, start, end))

    for _ in range(n_noise):
        oid = next_oid
        next_oid += 1
        pos = rng.uniform(0, extent, size=2)
        for t in range(duration):
            pos = pos + rng.uniform(-noise_step, noise_step, size=2)
            pos = np.clip(pos, -extent, 2 * extent)
            oids.append(oid)
            ts.append(t)
            xs.append(float(pos[0]))
            ys.append(float(pos[1]))

    dataset = Dataset(np.array(oids), np.array(ts), np.array(xs), np.array(ys))
    return PlantedWorkload(dataset=dataset, convoys=truth, eps=eps)


def random_walk_dataset(
    *,
    n_objects: int = 30,
    duration: int = 50,
    extent: float = 200.0,
    step: float = 10.0,
    seed: int = 0,
) -> Dataset:
    """Pure random-walk noise (no planted structure).

    Small extents relative to ``n_objects * step`` make incidental clusters —
    and hence incidental convoys — likely, which is exactly what the
    randomized equivalence tests need.
    """
    rng = np.random.default_rng(seed)
    oids: List[int] = []
    ts: List[int] = []
    xs: List[float] = []
    ys: List[float] = []
    pos = rng.uniform(0, extent, size=(n_objects, 2))
    for t in range(duration):
        pos = pos + rng.uniform(-step, step, size=(n_objects, 2))
        pos = np.clip(pos, 0, extent)
        for oid in range(n_objects):
            oids.append(oid)
            ts.append(t)
            xs.append(float(pos[oid, 0]))
            ys.append(float(pos[oid, 1]))
    return Dataset(np.array(oids), np.array(ts), np.array(xs), np.array(ys))
