"""Data substrate: dataset container, IO, generators, preprocessing."""

from .brinkhoff import BrinkhoffConfig, BrinkhoffGenerator, generate_brinkhoff
from .dataset import Dataset, DatasetInfo
from .interpolate import interpolate_dataset
from .io import load_csv, load_npz, save_csv, save_npz
from .planter import PlantedWorkload, plant_convoys, random_walk_dataset
from .roadnet import RoadNetwork, generate_road_network
from .tdrive import TDriveConfig, generate_tdrive
from .trucks import TrucksConfig, generate_trucks

__all__ = [
    "BrinkhoffConfig",
    "BrinkhoffGenerator",
    "Dataset",
    "DatasetInfo",
    "PlantedWorkload",
    "RoadNetwork",
    "TDriveConfig",
    "TrucksConfig",
    "generate_brinkhoff",
    "generate_road_network",
    "generate_tdrive",
    "generate_trucks",
    "interpolate_dataset",
    "load_csv",
    "load_npz",
    "plant_convoys",
    "random_walk_dataset",
    "save_csv",
    "save_npz",
]
