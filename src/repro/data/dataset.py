"""Columnar trajectory dataset.

Movement data is the paper's 4-column table ``(oid, x, y, t)``.  We store it
column-wise in numpy arrays sorted by ``(t, oid)`` — the clustered order both
on-disk stores use — and expose the access paths the miners need:

* ``snapshot(t)``: every object present at tick ``t`` (benchmark clustering);
* ``points_for(t, oids)``: a subset of one snapshot (HWMT re-clustering);
* restriction views by object set and time interval (validation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.source import select_sorted_rows
from ..core.types import Timestamp

#: A snapshot is (object ids, xs, ys) with aligned rows sorted by object id.
Snapshot = Tuple[np.ndarray, np.ndarray, np.ndarray]

_EMPTY_SNAPSHOT: Snapshot = (
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.float64),
    np.empty(0, dtype=np.float64),
)


@dataclass(frozen=True)
class DatasetInfo:
    """Summary statistics of a dataset (printed by the CLI and Table 4 bench)."""

    num_points: int
    num_objects: int
    start_time: int
    end_time: int
    width: float
    height: float

    @property
    def duration(self) -> int:
        return self.end_time - self.start_time + 1


class Dataset:
    """Immutable columnar trajectory table sorted by ``(t, oid)``."""

    def __init__(
        self,
        oids: np.ndarray,
        ts: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        *,
        presorted: bool = False,
    ):
        oids = np.asarray(oids, dtype=np.int64)
        ts = np.asarray(ts, dtype=np.int64)
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if not (len(oids) == len(ts) == len(xs) == len(ys)):
            raise ValueError("all columns must have identical lengths")
        if not presorted and len(ts):
            order = np.lexsort((oids, ts))
            oids, ts, xs, ys = oids[order], ts[order], xs[order], ys[order]
        self.oids = oids
        self.ts = ts
        self.xs = xs
        self.ys = ys
        self._index = _build_time_index(ts)

    # -- construction ----------------------------------------------------

    @staticmethod
    def from_records(records: Iterable[Tuple[int, int, float, float]]) -> "Dataset":
        """Build from ``(oid, t, x, y)`` tuples."""
        rows = list(records)
        if not rows:
            return Dataset.empty()
        oids, ts, xs, ys = zip(*rows)
        return Dataset(np.array(oids), np.array(ts), np.array(xs), np.array(ys))

    @staticmethod
    def empty() -> "Dataset":
        return Dataset(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.float64),
            presorted=True,
        )

    # -- basic properties --------------------------------------------------

    def __len__(self) -> int:
        return len(self.oids)

    @property
    def num_points(self) -> int:
        return len(self.oids)

    @property
    def start_time(self) -> Timestamp:
        if not len(self.ts):
            raise ValueError("empty dataset has no time range")
        return int(self.ts[0])

    @property
    def end_time(self) -> Timestamp:
        if not len(self.ts):
            raise ValueError("empty dataset has no time range")
        return int(self.ts[-1])

    def timestamps(self) -> np.ndarray:
        """Distinct timestamps present, ascending."""
        return np.fromiter(self._index.keys(), dtype=np.int64, count=len(self._index))

    def objects(self) -> np.ndarray:
        """Distinct object ids, ascending."""
        return np.unique(self.oids)

    @property
    def num_objects(self) -> int:
        return len(self.objects())

    def info(self) -> DatasetInfo:
        if not len(self):
            return DatasetInfo(0, 0, 0, -1, 0.0, 0.0)
        return DatasetInfo(
            num_points=self.num_points,
            num_objects=self.num_objects,
            start_time=self.start_time,
            end_time=self.end_time,
            width=float(self.xs.max() - self.xs.min()),
            height=float(self.ys.max() - self.ys.min()),
        )

    # -- access paths used by the miners -----------------------------------

    def snapshot(self, t: Timestamp) -> Snapshot:
        """All objects present at tick ``t`` (rows sorted by object id)."""
        bounds = self._index.get(int(t))
        if bounds is None:
            return _EMPTY_SNAPSHOT
        lo, hi = bounds
        return self.oids[lo:hi], self.xs[lo:hi], self.ys[lo:hi]

    def points_for(self, t: Timestamp, oids: Sequence[int]) -> Snapshot:
        """Subset of snapshot ``t`` restricted to the given object ids."""
        wanted = np.asarray(sorted(set(oids)), dtype=np.int64)
        return self._points_for_sorted(t, wanted)

    def points_for_many(
        self, ts: Sequence[Timestamp], oids: Sequence[int]
    ) -> Dict[int, Snapshot]:
        """Batched :meth:`points_for`: one call covering several timestamps.

        The wanted-object set is normalised once instead of per tick; the
        HWMT uses this to fetch a candidate's whole hop window in one call.
        """
        wanted = np.asarray(sorted(set(oids)), dtype=np.int64)
        return {int(t): self._points_for_sorted(int(t), wanted) for t in ts}

    def _points_for_sorted(self, t: Timestamp, wanted: np.ndarray) -> Snapshot:
        snap_oids, xs, ys = self.snapshot(t)
        if not len(snap_oids) or not len(wanted):
            return _EMPTY_SNAPSHOT
        return select_sorted_rows(snap_oids, xs, ys, wanted)

    def restrict_objects(self, oids: Iterable[int]) -> "Dataset":
        """The paper's ``DB |O``: rows of the given objects only."""
        wanted = np.asarray(sorted(set(oids)), dtype=np.int64)
        mask = np.isin(self.oids, wanted)
        return Dataset(
            self.oids[mask], self.ts[mask], self.xs[mask], self.ys[mask],
            presorted=True,
        )

    def restrict_time(self, start: Timestamp, end: Timestamp) -> "Dataset":
        """The paper's ``DB [T]``: rows with ``start <= t <= end``."""
        lo = np.searchsorted(self.ts, start, side="left")
        hi = np.searchsorted(self.ts, end, side="right")
        return Dataset(
            self.oids[lo:hi], self.ts[lo:hi], self.xs[lo:hi], self.ys[lo:hi],
            presorted=True,
        )

    def iter_records(self) -> Iterator[Tuple[int, int, float, float]]:
        """Yield ``(oid, t, x, y)`` rows in clustered order."""
        for oid, t, x, y in zip(self.oids, self.ts, self.xs, self.ys):
            yield int(oid), int(t), float(x), float(y)

    def concat(self, other: "Dataset") -> "Dataset":
        return Dataset(
            np.concatenate([self.oids, other.oids]),
            np.concatenate([self.ts, other.ts]),
            np.concatenate([self.xs, other.xs]),
            np.concatenate([self.ys, other.ys]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        return (
            np.array_equal(self.oids, other.oids)
            and np.array_equal(self.ts, other.ts)
            and np.array_equal(self.xs, other.xs)
            and np.array_equal(self.ys, other.ys)
        )

    __hash__ = None  # type: ignore[assignment]


def _build_time_index(ts: np.ndarray) -> Dict[int, Tuple[int, int]]:
    """Map each distinct timestamp to its contiguous row range [lo, hi)."""
    index: Dict[int, Tuple[int, int]] = {}
    if not len(ts):
        return index
    boundaries = np.flatnonzero(np.diff(ts)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(ts)]])
    for lo, hi in zip(starts.tolist(), ends.tolist()):
        index[int(ts[lo])] = (lo, hi)
    return index
