"""Dataset serialisation: CSV (human-friendly) and NPZ (fast binary)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from .dataset import Dataset

PathLike = Union[str, Path]

_CSV_HEADER = ("oid", "t", "x", "y")


def save_csv(dataset: Dataset, path: PathLike) -> None:
    """Write the 4-column ``(oid, t, x, y)`` table as CSV with a header."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_HEADER)
        for oid, t, x, y in dataset.iter_records():
            writer.writerow((oid, t, repr(x), repr(y)))


def load_csv(path: PathLike) -> Dataset:
    """Read a CSV produced by :func:`save_csv` (header optional)."""
    oids, ts, xs, ys = [], [], [], []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if not row:
                continue
            if row[0] == _CSV_HEADER[0]:
                continue  # header line
            oids.append(int(row[0]))
            ts.append(int(row[1]))
            xs.append(float(row[2]))
            ys.append(float(row[3]))
    return Dataset(np.array(oids), np.array(ts), np.array(xs), np.array(ys))


def save_npz(dataset: Dataset, path: PathLike) -> None:
    """Write the dataset as a compressed numpy archive."""
    np.savez_compressed(
        path, oids=dataset.oids, ts=dataset.ts, xs=dataset.xs, ys=dataset.ys
    )


def load_npz(path: PathLike) -> Dataset:
    with np.load(path) as archive:
        return Dataset(
            archive["oids"], archive["ts"], archive["xs"], archive["ys"],
            presorted=True,
        )
