"""Developer tooling that ships with the repo but stays off the public API.

Nothing under :mod:`repro.devtools` is exported through :mod:`repro.api`
(asserted by ``tests/test_api_surface.py``): these are tools for working
*on* the codebase — the :mod:`repro.devtools.lint` invariant checker —
not part of the library surface users program against.
"""
