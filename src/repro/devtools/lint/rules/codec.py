"""Binary-codec agreement: struct formats pair up, magics are singular.

The index rows, WAL frames, checkpoints, SSTables and cold segments are
all hand-rolled ``struct`` codecs (PRs 2, 5, 9).  A format string that
is packed but never unpacked (or vice versa) is a codec half: either
dead weight or — worse — a reader/writer drifting apart.  File magics
identify a format on disk; two formats sharing one magic can silently
open each other's files.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from ..engine import Finding, LintContext, Module, Rule, dotted

_PACKERS = ("pack", "pack_into")
_UNPACKERS = ("unpack", "unpack_from", "iter_unpack", "calcsize")


class CodecPairRule(Rule):
    """Every literal struct format appears on both codec sides.

    ``struct.Struct(fmt)`` counts as both (the object packs and
    unpacks).  A non-literal format is allowed only when it is a
    parameter of the enclosing function — the codec-helper idiom
    (``_Writer.pack(self, fmt, *values)``) — because the helper's
    callers supply the literal.
    """

    rule_id = "codec-pair"
    severity = "error"
    description = "struct formats are literal and packed <-> unpacked symmetrically"

    def __init__(self) -> None:
        # fmt -> {"pack": [(path, line)], "unpack": [(path, line)]}
        self._sides: Dict[str, Dict[str, List[Tuple[str, int]]]] = {}

    def _record(self, fmt: str, side: str, module: Module, line: int) -> None:
        sides = self._sides.setdefault(fmt, {"pack": [], "unpack": []})
        sides[side].append((module.relpath, line))

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []

        def scan(node: ast.AST, params: Set[str]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = set(params)
                args = node.args
                for arg in (
                    *args.posonlyargs, *args.args, *args.kwonlyargs,
                ):
                    inner.add(arg.arg)
                for child in ast.iter_child_nodes(node):
                    scan(child, inner)
                return
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                base = dotted(node.func.value)
                attr = node.func.attr
                if base == "struct" and (
                    attr in _PACKERS or attr in _UNPACKERS or attr == "Struct"
                ):
                    findings.extend(self._check_call(module, node, attr, params))
            for child in ast.iter_child_nodes(node):
                scan(child, params)

        scan(module.tree, set())
        return findings

    def _check_call(
        self, module: Module, call: ast.Call, attr: str, params: Set[str]
    ) -> Iterable[Finding]:
        if not call.args:
            return ()
        fmt_arg = call.args[0]
        if isinstance(fmt_arg, ast.Constant) and isinstance(fmt_arg.value, str):
            fmt = fmt_arg.value
            if attr == "Struct":
                self._record(fmt, "pack", module, call.lineno)
                self._record(fmt, "unpack", module, call.lineno)
            elif attr in _PACKERS:
                self._record(fmt, "pack", module, call.lineno)
            else:
                self._record(fmt, "unpack", module, call.lineno)
            return ()
        if isinstance(fmt_arg, ast.Name) and fmt_arg.id in params:
            return ()  # codec helper: the caller supplies the literal
        return [
            self.finding(
                module,
                call.lineno,
                f"struct.{attr} format must be a string literal (or a "
                f"parameter of a codec helper); a computed format cannot be "
                f"matched against its opposite side",
            )
        ]

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fmt, sides in sorted(self._sides.items()):
            if sides["pack"] and not sides["unpack"]:
                for path, line in sides["pack"]:
                    findings.append(
                        self.finding(
                            path,
                            line,
                            f"format {fmt!r} is packed here but never "
                            f"unpacked anywhere — write-only codec half",
                        )
                    )
            elif sides["unpack"] and not sides["pack"]:
                for path, line in sides["unpack"]:
                    findings.append(
                        self.finding(
                            path,
                            line,
                            f"format {fmt!r} is unpacked here but never "
                            f"packed anywhere — read-only codec half",
                        )
                    )
        return findings


class MagicOnceRule(Rule):
    """File magic byte constants are defined once, with unique values."""

    rule_id = "magic-once"
    severity = "error"
    description = "on-disk magic byte constants are unique across formats"

    def __init__(self) -> None:
        self._magics: Dict[bytes, List[Tuple[str, int, str]]] = {}

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        for node in module.tree.body:  # module level only
            if not isinstance(node, ast.Assign):
                continue
            if not (
                isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, bytes)
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and "MAGIC" in target.id.upper():
                    self._magics.setdefault(node.value.value, []).append(
                        (module.relpath, node.lineno, target.id)
                    )
        return ()

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for value, sites in sorted(self._magics.items()):
            if len(sites) <= 1:
                continue
            first = sites[0]
            for path, line, name in sites[1:]:
                findings.append(
                    self.finding(
                        path,
                        line,
                        f"magic {value!r} ({name}) already used by "
                        f"{first[2]} at {first[0]}:{first[1]}; two on-disk "
                        f"formats must not share a magic",
                    )
                )
        return findings
