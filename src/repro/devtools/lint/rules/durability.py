"""Crash-point hygiene: the fault-injection contract from PR 5.

Every durability code path carries named crash points
(``FAULTS.crash_point("service.wal.rotate")``) so recovery tests can
kill the process at a precise instant.  The contract only works when a
point's name is a string literal (greppable, armable), defined at
exactly one site (arming a name must target one instant, not several),
and actually exercised by at least one test (an unarmed crash point is
dead recovery coverage).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from ..engine import Finding, LintContext, Module, Rule, dotted

_HOOKS = ("crash_point", "partial_write")


def _iter_hook_calls(module: Module) -> Iterable[Tuple[ast.Call, str]]:
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _HOOKS
            and dotted(node.func.value).split(".")[-1] == "FAULTS"
        ):
            yield node, node.func.attr


def _literal_point(call: ast.Call):
    if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
        call.args[0].value, str
    ):
        return call.args[0].value
    return None


class CrashPointRule(Rule):
    """Crash point names are string literals and globally unique."""

    rule_id = "crash-point"
    severity = "error"
    description = "FAULTS crash points use unique string-literal names"

    def __init__(self) -> None:
        self._sites: Dict[str, List[Tuple[str, int]]] = {}

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for call, hook in _iter_hook_calls(module):
            point = _literal_point(call)
            if point is None:
                findings.append(
                    self.finding(
                        module,
                        call.lineno,
                        f"FAULTS.{hook} takes a string-literal point name so "
                        f"tests can arm it; got a computed expression",
                    )
                )
                continue
            self._sites.setdefault(point, []).append((module.relpath, call.lineno))
        return findings

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for point, sites in sorted(self._sites.items()):
            if len(sites) <= 1:
                continue
            first = sites[0]
            for path, line in sites[1:]:
                findings.append(
                    self.finding(
                        path,
                        line,
                        f"crash point {point!r} already instrumented at "
                        f"{first[0]}:{first[1]}; arming it would fire at "
                        f"several instants — pick a distinct name",
                    )
                )
        return findings


class CrashPointCoverageRule(Rule):
    """Every instrumented crash point is referenced by at least one test."""

    rule_id = "crash-point-coverage"
    severity = "error"
    description = "every FAULTS crash point is armed by a test or benchmark"

    def __init__(self) -> None:
        self._sites: Dict[str, Tuple[str, int]] = {}

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        for call, _ in _iter_hook_calls(module):
            point = _literal_point(call)
            if point is not None:
                self._sites.setdefault(point, (module.relpath, call.lineno))
        return ()

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        corpus = ctx.corpus()
        findings: List[Finding] = []
        for point, (path, line) in sorted(self._sites.items()):
            if point not in corpus:
                findings.append(
                    self.finding(
                        path,
                        line,
                        f"crash point {point!r} is never referenced by any "
                        f"file under tests/ or benchmarks/ — dead recovery "
                        f"coverage; arm it in a kill-and-restart test",
                    )
                )
        return findings
