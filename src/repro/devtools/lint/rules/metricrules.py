"""Metrics discipline: naming, cardinality, import-time creation (PR 6).

The observability layer promises Prometheus-idiomatic expositions: one
``repro_`` namespace, counters ending ``_total``, histograms carrying a
unit suffix, label sets bounded (a label value interpolated from user
input mints a new time series per distinct value — an unbounded-memory
bug), and instruments created once at import, never per request (the
registry's get-or-create makes per-request creation *work*, but it puts
a lock acquisition and dict probe on the hot path the design keeps to a
single attribute increment).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from ..engine import Finding, LintContext, Module, Rule, dotted

_FACTORIES = ("counter", "gauge", "histogram")
_NAME_RE = re.compile(r"^repro_[a-z0-9_]+$")
_HISTOGRAM_SUFFIXES = ("_seconds", "_bytes")


def _is_factory_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _FACTORIES
        and dotted(node.func.value).split(".")[-1] == "METRICS"
    )


class MetricNamingRule(Rule):
    """Instrument names are literal, namespaced, and unit-suffixed."""

    rule_id = "metric-naming"
    severity = "error"
    description = (
        "metric names: literal repro_* snake_case; counters _total, "
        "histograms _seconds/_bytes"
    )

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not _is_factory_call(node):
                continue
            kind = node.func.attr  # type: ignore[union-attr]
            if not node.args or not (
                isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        f"METRICS.{kind} name must be a string literal so "
                        f"dashboards and the exposition contract can grep it",
                    )
                )
                continue
            name = node.args[0].value
            problem = None
            if not _NAME_RE.match(name):
                problem = "must match repro_[a-z0-9_]+ (namespaced snake_case)"
            elif kind == "counter" and not name.endswith("_total"):
                problem = "counters end with _total"
            elif kind == "histogram" and not name.endswith(_HISTOGRAM_SUFFIXES):
                problem = "histograms carry a unit suffix (_seconds or _bytes)"
            elif kind == "gauge" and name.endswith("_total"):
                problem = "gauges must not masquerade as counters (_total)"
            if problem:
                findings.append(
                    self.finding(
                        module, node.lineno, f"metric name {name!r}: {problem}"
                    )
                )
        return findings


class MetricCardinalityRule(Rule):
    """Label values come from bounded sets, never interpolated strings.

    ``instrument.labels(f"user-{uid}")`` (or ``%``-format, ``.format``,
    string concatenation) mints one child series per distinct value —
    unbounded exposition growth.  Pass values drawn from literal or
    otherwise bounded sets; map open-ended inputs to a bounded bucket
    first (the server's ``"unmatched"`` route idiom).
    """

    rule_id = "metric-cardinality"
    severity = "error"
    description = "no interpolated strings as .labels() values"

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "labels"
            ):
                continue
            for arg in node.args:
                if self._interpolated(arg):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            "interpolated label value creates one time "
                            "series per distinct input (unbounded "
                            "cardinality); use values from a bounded set",
                        )
                    )
                    break
        return findings

    @staticmethod
    def _interpolated(arg: ast.expr) -> bool:
        if isinstance(arg, ast.JoinedStr):
            return True
        if isinstance(arg, ast.BinOp) and isinstance(arg.op, (ast.Mod, ast.Add)):
            return True
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "format"
        ):
            return True
        return False


class MetricImportTimeRule(Rule):
    """Instruments are created at import time, not inside functions."""

    rule_id = "metric-import-time"
    severity = "error"
    description = "METRICS.counter/gauge/histogram only at module import time"

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []

        def scan(node: ast.AST, depth: int) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                depth += 1
            if depth > 0 and _is_factory_call(node):
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        f"METRICS.{node.func.attr} inside a function puts "  # type: ignore[union-attr]
                        f"registry lock + dict probe on the hot path; create "
                        f"the instrument at module import time",
                    )
                )
            for child in ast.iter_child_nodes(node):
                scan(child, depth)

        scan(module.tree, 0)
        return findings
