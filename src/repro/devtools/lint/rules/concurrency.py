"""Concurrency rules: writer-queue discipline and lock-guarded state.

PR 4 established the server's concurrency model: every mutation of the
ingest pipeline flows through the single-writer queue (a closure handed
to ``_submit_write``), while reads run concurrently on the executor.
PRs 5–9 added lock-owning classes (tracer, metrics registry, fault
injector) whose shared attributes are written under ``self._lock``.
These rules keep both disciplines from eroding silently.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from ..engine import Finding, LintContext, Module, Rule, dotted, shallow_walk

#: Methods that mutate ConvoyIngestService / ConvoyIndex state.
MUTATORS = ("observe", "finish", "checkpoint", "recover", "set_retention")


class SingleWriterRule(Rule):
    """Ingest mutations in the HTTP server must ride the writer queue.

    Inside ``server/app.py``, a reference to ``*.observe`` / ``*.finish``
    / ``*.checkpoint`` on an ingest-like receiver (or an append to the
    server's point log) that appears *directly* in an ``async def``
    handler body runs on the event loop or the reader pool — racing the
    single writer.  Such calls are only legal inside a nested function
    or lambda (the job closures submitted to ``_submit_write``).
    """

    rule_id = "single-writer"
    severity = "error"
    description = (
        "server/app.py: ingest mutations only inside writer-queue job closures"
    )
    only_files = ("server/app.py",)

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for inner in shallow_walk(node.body):
                if not isinstance(inner, ast.Attribute):
                    continue
                base = dotted(inner.value)
                parts = base.split(".") if base else []
                offending = (
                    inner.attr in MUTATORS and "ingest" in parts
                ) or (inner.attr == "append" and parts and parts[-1] == "_points")
                if offending:
                    findings.append(
                        self.finding(
                            module,
                            inner.lineno,
                            f"mutation `{base}.{inner.attr}` outside the "
                            f"single-writer queue (reader/executor context in "
                            f"`async def {node.name}`); wrap it in a job "
                            f"closure submitted via _submit_write",
                        )
                    )
        return findings


def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attribute names a class binds to ``threading.Lock()/RLock()``."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and dotted(value.func) in ("threading.Lock", "threading.RLock")
        ):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks.add(target.attr)
    return locks


class LockGuardRule(Rule):
    """Shared attributes of lock-owning classes are written under the lock.

    A class that creates a ``threading.Lock`` has declared itself
    multi-threaded.  An attribute rebound (``self.x = ...`` or
    ``self.x += ...``) from two or more different methods is shared
    mutable state crossing thread-entry contexts; every such write
    outside ``__init__`` must sit inside ``with self._lock:`` (any of
    the class's lock attributes).  Append-only container mutation
    (``self.items.append(...)``) is exempt — rebinding is the race.
    """

    rule_id = "lock-guard"
    severity = "warning"
    description = (
        "classes owning a threading.Lock guard multi-method attribute writes"
    )

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef):
                findings.extend(self._check_class(module, cls))
        return findings

    def _check_class(self, module: Module, cls: ast.ClassDef) -> Iterable[Finding]:
        locks = _lock_attrs(cls)
        if not locks:
            return ()
        guard_names = {f"self.{lock}" for lock in locks}
        # (attr -> method -> [(lineno, guarded)]) for rebinds of self.attr.
        writes: Dict[str, Dict[str, List[Tuple[int, bool]]]] = {}

        def record(method: str, node: ast.AST, guarded: bool) -> None:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in locks
                ):
                    writes.setdefault(target.attr, {}).setdefault(method, []).append(
                        (node.lineno, guarded)
                    )

        def scan(method: str, nodes: Iterable[ast.stmt], guarded: bool) -> None:
            for node in nodes:
                if isinstance(node, ast.With):
                    inner_guarded = guarded or any(
                        dotted(item.context_expr) in guard_names
                        for item in node.items
                    )
                    scan(method, node.body, inner_guarded)
                    continue
                record(method, node, guarded)
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.stmt):
                        scan(method, [child], guarded)

        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan(item.name, item.body, guarded=False)

        findings: List[Finding] = []
        for attr, by_method in writes.items():
            methods = {name for name in by_method if name != "__init__"}
            if len(methods) < 2:
                continue
            for method in sorted(methods):
                for lineno, guarded in by_method[method]:
                    if not guarded:
                        findings.append(
                            self.finding(
                                module,
                                lineno,
                                f"`self.{attr}` is rebound from "
                                f"{len(methods)} methods of lock-owning class "
                                f"`{cls.name}` but `{method}` writes it "
                                f"outside `with self.<lock>:`",
                            )
                        )
        return findings
