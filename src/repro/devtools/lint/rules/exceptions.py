"""Exception discipline: no silently swallowed failures.

A bare ``except:`` catches ``SystemExit``/``KeyboardInterrupt`` — and,
critically for this codebase, the ``InjectedCrash`` the fault injector
raises to simulate SIGKILL, which would make recovery tests pass
vacuously.  ``except Exception: pass`` hides real failures (a torn WAL,
a dead listener) behind silence; handlers must act — log, count, return
a default, or re-raise typed (``SchemaError``, ``ConvoyServerError``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import Finding, LintContext, Module, Rule

_BROAD = ("Exception", "BaseException")


def _caught_names(type_node) -> List[str]:
    if type_node is None:
        return []
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    names = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _body_is_silent(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # a docstring/ellipsis is still silence
        return False
    return True


class SilentExceptRule(Rule):
    """No bare ``except:`` and no ``except Exception: pass`` in src."""

    rule_id = "silent-except"
    severity = "error"
    description = "no bare except; broad except handlers must act, not pass"

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        "bare `except:` catches SystemExit, KeyboardInterrupt "
                        "and the fault injector's InjectedCrash; name the "
                        "exceptions you mean",
                    )
                )
                continue
            caught = _caught_names(node.type)
            broad = [name for name in caught if name in _BROAD]
            if broad and _body_is_silent(node.body):
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        f"`except {broad[0]}` with an empty body swallows "
                        f"every failure silently; act on it (log, count, "
                        f"default) or catch something narrower",
                    )
                )
        return findings
