"""The rule catalogue: every invariant ``repro-lint`` enforces.

``ALL_RULES`` is the registry the engine instantiates per run; the
README's "Static analysis" section documents each rule id, what it
enforces and which PR introduced the invariant.
"""

from __future__ import annotations

from typing import Tuple, Type

from ..engine import Rule
from .apirules import ListenerOrderRule, MinerSchemaRule, RouteValidationRule
from .codec import CodecPairRule, MagicOnceRule
from .concurrency import LockGuardRule, SingleWriterRule
from .durability import CrashPointCoverageRule, CrashPointRule
from .exceptions import SilentExceptRule
from .hygiene import NoBytecodeRule
from .metricrules import (
    MetricCardinalityRule,
    MetricImportTimeRule,
    MetricNamingRule,
)

ALL_RULES: Tuple[Type[Rule], ...] = (
    SingleWriterRule,
    LockGuardRule,
    CrashPointRule,
    CrashPointCoverageRule,
    CodecPairRule,
    MagicOnceRule,
    MetricNamingRule,
    MetricCardinalityRule,
    MetricImportTimeRule,
    SilentExceptRule,
    MinerSchemaRule,
    RouteValidationRule,
    ListenerOrderRule,
    NoBytecodeRule,
)

__all__ = ["ALL_RULES"] + [cls.__name__ for cls in ALL_RULES]
