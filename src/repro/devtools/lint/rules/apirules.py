"""API-contract rules: miner schemas, route validation, listener order.

PR 3 gave every registered algorithm a typed parameter schema; PR 4 put
those schemas on the wire (every request parameter validated before any
work); PR 7 hung the analytics layer off the index listener protocol,
whose contract is "dispatch *after* the version bump" so listeners can
key caches off the version they observe.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from ..engine import Finding, LintContext, Module, Rule, dotted


class MinerSchemaRule(Rule):
    """Every ``@register_miner`` declares a schema for its extra params.

    A miner taking keyword parameters beyond ``(source, query)`` without
    a matching ``Param`` in the decorator's ``params=`` tuple is
    callable through the registry with unvalidated input — the schema
    layer exists so Python, CLI and wire callers share one contract.
    """

    rule_id = "miner-schema"
    severity = "error"
    description = "@register_miner extras are declared as typed Params"

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            decorator = self._register_call(node)
            if decorator is None:
                continue
            arg_names = [arg.arg for arg in node.args.args][2:]
            arg_names += [arg.arg for arg in node.args.kwonlyargs]
            declared = self._declared_params(decorator)
            missing = [name for name in arg_names if name not in declared]
            if missing:
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        f"miner `{node.name}` takes extra parameter(s) "
                        f"{missing} with no Param(...) entry in the "
                        f"register_miner params= schema; wire and CLI "
                        f"callers would bypass validation",
                    )
                )
        return findings

    @staticmethod
    def _register_call(node) -> Optional[ast.Call]:
        for decorator in node.decorator_list:
            if (
                isinstance(decorator, ast.Call)
                and dotted(decorator.func).split(".")[-1] == "register_miner"
            ):
                return decorator
        return None

    @staticmethod
    def _declared_params(decorator: ast.Call) -> Set[str]:
        declared: Set[str] = set()
        for keyword in decorator.keywords:
            if keyword.arg != "params":
                continue
            value = keyword.value
            elements = (
                value.elts if isinstance(value, (ast.Tuple, ast.List)) else []
            )
            for element in elements:
                if (
                    isinstance(element, ast.Call)
                    and element.args
                    and isinstance(element.args[0], ast.Constant)
                    and isinstance(element.args[0].value, str)
                ):
                    declared.add(element.args[0].value)
        return declared


class RouteValidationRule(Rule):
    """Parameterised HTTP routes validate through the schema layer.

    Reads the ``_ROUTES`` table in ``server/app.py``: every
    ``/analytics/*`` handler and the ``/convoys`` handler must call
    ``validated(...)``; the ``/mine`` handler must call
    ``*.schema.validate`` (or ``validated``).  Violations answer
    requests with hand-rolled parsing drifting from the typed
    ``SchemaError`` envelope the clients are written against.
    """

    rule_id = "route-validation"
    severity = "error"
    description = "/analytics/*, /convoys and /mine handlers use typed schemas"
    only_files = ("server/app.py",)

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        routes = self._routes(module)
        if not routes:
            return ()
        handlers: Dict[str, ast.AST] = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        findings: List[Finding] = []
        for path, handler_name in sorted(routes.items()):
            if not (path.startswith("/analytics/") or path in ("/convoys", "/mine")):
                continue
            handler = handlers.get(handler_name)
            if handler is None:
                continue
            if not self._validates(handler):
                findings.append(
                    self.finding(
                        module,
                        handler.lineno,
                        f"handler `{handler_name}` for route {path!r} never "
                        f"calls validated()/schema.validate(); its "
                        f"parameters bypass the typed schema layer",
                    )
                )
        return findings

    @staticmethod
    def _routes(module: Module) -> Dict[str, str]:
        routes: Dict[str, str] = {}
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):  # _ROUTES: Dict[...] = {...}
                targets = [node.target]
            else:
                continue
            if not (
                any(
                    isinstance(t, ast.Name) and t.id == "_ROUTES" for t in targets
                )
                and isinstance(node.value, ast.Dict)
            ):
                continue
            for key, value in zip(node.value.keys, node.value.values):
                if not (
                    isinstance(key, ast.Tuple)
                    and len(key.elts) == 2
                    and isinstance(key.elts[1], ast.Constant)
                    and isinstance(key.elts[1].value, str)
                ):
                    continue
                if isinstance(value, ast.Attribute):
                    routes[key.elts[1].value] = value.attr
        return routes

    @staticmethod
    def _validates(handler: ast.AST) -> bool:
        for node in ast.walk(handler):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "validated":
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "validate"
                and dotted(node.func.value).endswith("schema")
            ):
                return True
        return False


class ListenerOrderRule(Rule):
    """Index listeners dispatch only after the version bump.

    In ``service/index.py``, a function calling ``listener.on_add`` or
    ``listener.on_evict`` must have executed ``self.version += 1``
    earlier in its body: listeners (analytics summaries, retention
    rewind) key their incremental state off the version they observe,
    so dispatching first hands them a stale version.
    """

    rule_id = "listener-order"
    severity = "error"
    description = "service/index.py: on_add/on_evict fire after `self.version += 1`"
    only_files = ("service/index.py",)

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            dispatches = [
                inner
                for inner in ast.walk(node)
                if isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in ("on_add", "on_evict")
            ]
            if not dispatches:
                continue
            bumps = [
                inner.lineno
                for inner in ast.walk(node)
                if isinstance(inner, ast.AugAssign)
                and isinstance(inner.op, ast.Add)
                and isinstance(inner.target, ast.Attribute)
                and inner.target.attr == "version"
                and dotted(inner.target.value) == "self"
            ]
            for dispatch in dispatches:
                if not bumps or min(bumps) > dispatch.lineno:
                    findings.append(
                        self.finding(
                            module,
                            dispatch.lineno,
                            f"`{dispatch.func.attr}` dispatched in "
                            f"`{node.name}` before (or without) the "
                            f"`self.version += 1` bump; listeners would "
                            f"observe a stale index version",
                        )
                    )
        return findings
