"""Repo hygiene: no compiled bytecode tracked by version control.

PR 9 accidentally committed six ``__pycache__/*.pyc`` files; this rule
keeps them from reappearing.  It asks ``git ls-files`` for the tracked
file list (the on-disk tree legitimately grows ``__pycache__`` during
test runs — only *tracked* bytecode is a violation) and is silent when
no git repository is available.
"""

from __future__ import annotations

import subprocess
from typing import Callable, Iterable, List, Optional

from ..engine import Finding, LintContext, Rule


def _git_tracked_files(root) -> Optional[List[str]]:
    try:
        proc = subprocess.run(
            ["git", "ls-files"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.splitlines()


class NoBytecodeRule(Rule):
    """No ``.pyc`` / ``__pycache__`` entries in the tracked file list."""

    rule_id = "no-bytecode"
    severity = "error"
    description = "no compiled bytecode (.pyc, __pycache__) tracked by git"

    def __init__(
        self, file_lister: Callable[[object], Optional[List[str]]] = _git_tracked_files
    ) -> None:
        self._file_lister = file_lister

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        tracked = self._file_lister(ctx.root)
        if tracked is None:  # no VCS here: nothing to check
            return ()
        findings: List[Finding] = []
        for path in sorted(tracked):
            if path.endswith((".pyc", ".pyo")) or "__pycache__" in path.split("/"):
                findings.append(
                    self.finding(
                        path,
                        1,
                        "compiled bytecode is generated, not source; "
                        "`git rm --cached` it and keep __pycache__/ ignored",
                    )
                )
        return findings
