"""The ``repro-lint`` rule engine: AST walks, findings, suppressions.

The linter enforces the *project's own* cross-cutting invariants — the
ones PRs 1–9 established by convention (single-writer mutation
discipline, crash-point hygiene, metric naming, codec symmetry, listener
ordering) — the way mature DBMS codebases ship custom checkers beside
their test suites.  It is stdlib-only (:mod:`ast`), mirroring the
repo's no-dependency policy.

Vocabulary
----------
* :class:`Finding` — one violation: ``path:line``, rule id, severity
  (``error`` or ``warning``), message.
* :class:`Rule` — one invariant.  ``visit(module, ctx)`` yields findings
  for a single parsed file; ``finalize(ctx)`` yields cross-file findings
  after every file has been visited (rules keep per-run state on
  ``self``; :func:`run_lint` instantiates fresh rule objects each run).
* :func:`run_lint` — walk a tree, parse every ``.py`` file, apply the
  rules, drop suppressed findings, return the rest sorted.

Suppressions
------------
A finding is suppressed by a comment on the offending line or the line
directly above it::

    risky_call()  # lint: disable=rule-id — one-line justification

``# lint: disable=a,b`` silences several rules at once;
``# lint: disable-file=rule-id`` anywhere in a file silences a rule for
the whole file (used sparingly — prefer line-level suppressions, which
keep the justification next to the code they excuse).

Exit codes (``python -m repro.devtools.lint`` / ``repro-convoy lint``):
0 clean, 1 findings, 2 usage error.  ``--strict`` makes warnings count
as failures (the CI mode).
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = ["Finding", "LintContext", "Module", "Rule", "main", "run_lint"]

SEVERITIES = ("warning", "error")

_SUPPRESS_LINE_RE = re.compile(r"#\s*lint:\s*disable=([a-z0-9_,\- ]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*lint:\s*disable-file=([a-z0-9_,\- ]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source line."""

    path: str  # repo-relative, posix separators
    line: int
    rule: str
    severity: str  # "error" | "warning"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.severity}: {self.message}"


@dataclass
class Module:
    """One parsed source file handed to every rule."""

    path: Path  # absolute
    relpath: str  # relative to the lint root, posix separators
    source: str
    lines: List[str]
    tree: ast.Module


class LintContext:
    """Shared state for one lint run: the root, every parsed module, and
    the lazily-loaded *reference corpus* (tests + benchmarks text) that
    coverage rules grep for symbol references."""

    def __init__(self, root: Path, modules: Sequence[Module]):
        self.root = root
        self.modules = list(modules)
        self._corpus: Optional[str] = None

    def corpus(self) -> str:
        """Concatenated text of every ``tests/``/``benchmarks/`` file.

        Used by coverage rules ("every crash point is referenced by at
        least one test") — a substring probe over this blob is cheap and
        robust against how the test spells the reference.
        """
        if self._corpus is None:
            chunks: List[str] = []
            for folder in ("tests", "benchmarks"):
                base = self.root / folder
                if not base.is_dir():
                    continue
                for path in sorted(base.rglob("*.py")):
                    try:
                        chunks.append(path.read_text(encoding="utf-8"))
                    except OSError:
                        continue
            self._corpus = "\n".join(chunks)
        return self._corpus


class Rule:
    """Base class for one invariant.

    Subclasses set ``rule_id``, ``severity`` and ``description``, and
    override :meth:`visit` (per file) and/or :meth:`finalize` (cross
    file).  ``only_files`` restricts ``visit`` to files whose relative
    path ends with one of the given suffixes — rules that codify an
    invariant *owned* by one module (the server's writer queue, the
    index's listener protocol) scope themselves to that module instead
    of guessing at lookalike code elsewhere.
    """

    rule_id: str = "abstract"
    severity: str = "error"
    description: str = ""
    only_files: Optional[Tuple[str, ...]] = None

    def applies_to(self, module: Module) -> bool:
        if self.only_files is None:
            return True
        return any(module.relpath.endswith(suffix) for suffix in self.only_files)

    def visit(self, module: Module, ctx: LintContext) -> Iterable[Finding]:
        return ()

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        return ()

    def finding(self, module_or_path, line: int, message: str) -> Finding:
        path = (
            module_or_path.relpath
            if isinstance(module_or_path, Module)
            else str(module_or_path)
        )
        return Finding(path, line, self.rule_id, self.severity, message)


# -- AST helpers shared by the rule modules -----------------------------------


def dotted(node: ast.AST) -> str:
    """Render a ``Name``/``Attribute`` chain as dotted text, else ``""``.

    ``self.service.ingest`` -> ``"self.service.ingest"``; anything with a
    non-name base (a call, a subscript) renders as ``""`` so callers
    treat it as unmatchable.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def shallow_walk(nodes: Iterable[ast.AST]) -> Iterable[ast.AST]:
    """Walk statements without descending into nested function scopes.

    Used by rules about *where* code runs (writer queue vs handler body):
    a nested ``def job():`` or ``lambda`` is a different execution
    context, so its body is not part of the enclosing one.
    """
    stack = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # a different execution context: don't enter it
        yield node
        stack.extend(ast.iter_child_nodes(node))


def functions(tree: ast.AST) -> Iterable[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# -- the engine ---------------------------------------------------------------


def _iter_sources(targets: Sequence[Path]) -> Iterable[Path]:
    for target in targets:
        if target.is_file():
            yield target
            continue
        for path in sorted(target.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            yield path


def _parse_modules(
    root: Path, targets: Sequence[Path]
) -> Tuple[List[Module], List[Finding]]:
    modules: List[Module] = []
    findings: List[Finding] = []
    for path in _iter_sources(targets):
        relpath = path.relative_to(root).as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            findings.append(
                Finding(relpath, 1, "parse-error", "error", f"unreadable: {error}")
            )
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            findings.append(
                Finding(
                    relpath,
                    error.lineno or 1,
                    "parse-error",
                    "error",
                    f"syntax error: {error.msg}",
                )
            )
            continue
        modules.append(Module(path, relpath, source, source.splitlines(), tree))
    return modules, findings


def _suppressed_rules(line_text: str, pattern: re.Pattern) -> List[str]:
    match = pattern.search(line_text)
    if not match:
        return []
    return [rule.strip() for rule in match.group(1).split(",") if rule.strip()]


def _is_suppressed(finding: Finding, by_path: Dict[str, Module]) -> bool:
    module = by_path.get(finding.path)
    if module is None:
        return False  # findings outside parsed files (e.g. tracked .pyc)
    for text in module.lines:
        if finding.rule in _suppressed_rules(text, _SUPPRESS_FILE_RE):
            return True
    for lineno in (finding.line, finding.line - 1):
        if 1 <= lineno <= len(module.lines):
            rules = _suppressed_rules(module.lines[lineno - 1], _SUPPRESS_LINE_RE)
            if finding.rule in rules:
                return True
    return False


def default_rules() -> List[Rule]:
    from .rules import ALL_RULES

    return [cls() for cls in ALL_RULES]


def run_lint(
    root,
    rules: Optional[Sequence[Union[Rule, type]]] = None,
    targets: Optional[Sequence] = None,
) -> List[Finding]:
    """Lint ``root`` (its ``src/`` tree by default) and return findings.

    ``rules`` accepts rule classes or pre-built instances (instances let
    tests parameterise a rule); omitted, every registered rule runs.
    Suppressed findings are dropped; the rest come back sorted by
    ``(path, line)``.
    """
    root = Path(root).resolve()
    if rules is None:
        instances = default_rules()
    else:
        instances = [rule() if isinstance(rule, type) else rule for rule in rules]
    if targets is None:
        src = root / "src"
        target_paths = [src if src.is_dir() else root]
    else:
        target_paths = [Path(t) if Path(t).is_absolute() else root / t for t in targets]
    modules, findings = _parse_modules(root, target_paths)
    ctx = LintContext(root, modules)
    for rule in instances:
        for module in modules:
            if rule.applies_to(module):
                findings.extend(rule.visit(module, ctx))
        findings.extend(rule.finalize(ctx))
    by_path = {module.relpath: module for module in modules}
    return sorted(f for f in findings if not _is_suppressed(f, by_path))


def _detect_root() -> Path:
    cwd = Path.cwd()
    for candidate in (cwd, *cwd.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    # Running from an installed/source checkout: engine.py lives at
    # <root>/src/repro/devtools/lint/engine.py.
    packaged = Path(__file__).resolve().parents[4]
    if (packaged / "src" / "repro").is_dir():
        return packaged
    return cwd


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro codebase",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="repo root to lint (default: auto-detected from cwd)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (the CI mode)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id:24} {rule.severity:8} {rule.description}")
        return 0

    root = Path(args.root).resolve() if args.root else _detect_root()
    if not root.is_dir():
        print(f"repro-lint: no such directory: {root}", file=sys.stderr)
        return 2
    findings = run_lint(root)
    for finding in findings:
        print(finding.render())
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if findings:
        print(f"repro-lint: {errors} error(s), {warnings} warning(s)")
    else:
        print("repro-lint: clean")
    if errors or (args.strict and warnings):
        return 1
    return 0
