"""``repro-lint``: the project-specific AST invariant checker.

Run it as ``python -m repro.devtools.lint [--strict]`` or
``repro-convoy lint``.  See :mod:`repro.devtools.lint.engine` for the
engine vocabulary and the suppression syntax, and the README's
"Static analysis" section for the rule catalogue.
"""

from .engine import Finding, LintContext, Module, Rule, main, run_lint
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "Module",
    "Rule",
    "main",
    "run_lint",
]
