"""Command-line interface: ``repro-convoy generate | mine | info | serve | stats | query``.

Every subcommand is a thin shell over the :class:`repro.api.ConvoySession`
facade — the same surface library users script against.

Examples::

    repro-convoy generate --kind brinkhoff --out traffic.csv
    repro-convoy mine traffic.csv -m 3 -k 10 --eps 50 --store lsmt
    repro-convoy mine traffic.csv -m 3 -k 10 --eps 50 --algorithm cuts lam=6
    repro-convoy info traffic.csv
    repro-convoy serve traffic.csv -m 3 -k 10 --eps 50 --index-dir ./idx --shards 2x2
    repro-convoy serve traffic.csv -m 3 -k 10 --eps 50 --http 8080
    repro-convoy serve -m 3 -k 10 --eps 50 --index-dir ./idx --durable --http 8080
    repro-convoy query ./idx --time 10:80
    repro-convoy query ./idx --object 42
    repro-convoy stats --port 8080
    repro-convoy lint --strict
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings
from typing import List, Optional

from .api import ConvoySession, SchemaError, get_miner, list_miners, miner_names
from .data import (
    generate_brinkhoff,
    generate_tdrive,
    generate_trucks,
    load_csv,
    plant_convoys,
    save_csv,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-convoy",
        description="k/2-hop convoy pattern mining (VLDB 2019 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument(
        "--kind",
        choices=("brinkhoff", "trucks", "tdrive", "planted"),
        default="brinkhoff",
    )
    generate.add_argument("--out", required=True, help="output CSV path")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument(
        "--scale", type=float, default=1.0, help="size multiplier (>= 0.1)"
    )

    mine = commands.add_parser("mine", help="mine convoys from a CSV dataset")
    mine.add_argument("dataset", help="input CSV (oid,t,x,y)")
    mine.add_argument("-m", type=int, required=True, help="min convoy size")
    mine.add_argument("-k", type=int, required=True, help="min convoy length")
    mine.add_argument("--eps", type=float, required=True, help="distance threshold")
    mine.add_argument(
        "--algorithm",
        choices=miner_names(),
        default="k2hop",
        help="registered mining algorithm (see the `algorithms` subcommand)",
    )
    mine.add_argument(
        "--store",
        choices=("memory", "file", "rdbms", "lsmt"),
        default="memory",
        help="storage backend to mine from",
    )
    mine.add_argument("--stats", action="store_true", help="print mining statistics")
    mine.add_argument(
        "params",
        nargs="*",
        metavar="name=value",
        help="algorithm-specific parameters, validated against the "
        "algorithm's typed schema (see the `algorithms` subcommand)",
    )

    algorithms = commands.add_parser(
        "algorithms", help="list the registered mining algorithms"
    )
    algorithms.add_argument(
        "--kind", default=None, help="filter by pattern kind (e.g. convoy, flock)"
    )

    info = commands.add_parser("info", help="summarise a CSV dataset")
    info.add_argument("dataset")

    serve = commands.add_parser(
        "serve", help="ingest a CSV feed into a queryable convoy index"
    )
    serve.add_argument(
        "dataset",
        nargs="?",
        default=None,
        help="input CSV (oid,t,x,y), replayed as a feed; omit to accept a "
        "live feed over --http only",
    )
    serve.add_argument("-m", type=int, required=True, help="min convoy size")
    serve.add_argument("-k", type=int, required=True, help="min convoy length")
    serve.add_argument("--eps", type=float, required=True, help="distance threshold")
    serve.add_argument(
        "--index-dir",
        default=None,
        help="directory to persist the convoy index into (omit for in-memory)",
    )
    serve.add_argument(
        "--store",
        choices=("bptree", "lsmt"),
        default=None,
        help="persistent index backend for --index-dir (default lsmt)",
    )
    serve.add_argument(
        "--backend",
        choices=("bptree", "lsmt"),
        default=None,
        help=argparse.SUPPRESS,  # deprecated alias of --store
    )
    serve.add_argument(
        "--shards",
        default=None,
        help="spatial shard grid, e.g. 1x1, 2x2, 4x2 "
        "(default 2x2 with a dataset, 1x1 for a blank feed)",
    )
    serve.add_argument(
        "--history",
        default="full",
        help="validation window: 'full', or a snapshot count (0 disables)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="threads for per-shard clustering (0 = serial)",
    )
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="after ingesting, keep serving the index over HTTP on PORT "
        "(0 picks a free port; Ctrl-C stops)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --http (default 127.0.0.1)",
    )
    serve.add_argument(
        "--durable",
        action="store_true",
        help="journal the feed and checkpoint into --index-dir so a killed "
        "server resumes mid-feed on restart",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        metavar="N",
        help="batches between durable checkpoints (default 64)",
    )
    serve.add_argument(
        "--retain-window",
        type=int,
        metavar="TICKS",
        help="age convoys ending more than TICKS behind the feed frontier "
        "out of the live index (into cold segments with --index-dir)",
    )
    serve.add_argument(
        "--retain-max-rows",
        type=int,
        metavar="N",
        help="cap the live index at N convoys, evicting oldest-ending first",
    )

    lint = commands.add_parser(
        "lint", help="run the project's AST invariant checker over the repo"
    )
    lint.add_argument(
        "root",
        nargs="?",
        default=None,
        help="repo root to lint (default: auto-detected from cwd)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (the CI mode)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )

    stats = commands.add_parser(
        "stats", help="pretty-print a live server's metrics snapshot"
    )
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=8080)
    stats.add_argument(
        "--raw",
        action="store_true",
        help="dump the raw Prometheus exposition from /metrics instead",
    )

    query = commands.add_parser(
        "query", help="query a persisted convoy index"
    )
    query.add_argument("index_dir", help="directory written by `serve --index-dir`")
    what = query.add_mutually_exclusive_group(required=True)
    what.add_argument("--time", help="overlap query, as start:end")
    what.add_argument("--object", type=int, help="convoy history of one object id")
    what.add_argument(
        "--containing", help="convoys containing all of these comma-separated oids"
    )
    what.add_argument(
        "--region", help="bbox overlap query, as xmin,ymin,xmax,ymax"
    )

    analytics = commands.add_parser(
        "analytics",
        help="summary-backed analytics over a persisted convoy index",
    )
    analytics.add_argument(
        "index_dir", help="directory written by `serve --index-dir`"
    )
    which = analytics.add_mutually_exclusive_group(required=True)
    which.add_argument(
        "--windows", type=int, metavar="WIDTH",
        help="windowed lifetime aggregates (tumbling unless --step)",
    )
    which.add_argument(
        "--top-k", type=int, metavar="K", dest="top_k",
        help="top-k convoys by --by, optionally per --group",
    )
    which.add_argument(
        "--regions", action="store_true",
        help="per-region-cell aggregates ranked by --by",
    )
    which.add_argument(
        "--objects", action="store_true",
        help="per-object aggregates ranked by --by",
    )
    which.add_argument(
        "--pairs", type=int, metavar="K",
        help="top co-travelling object pairs by shared convoy ticks",
    )
    which.add_argument(
        "--neighbors", type=int, metavar="OID",
        help="one object's co-travellers, heaviest first",
    )
    which.add_argument(
        "--components", action="store_true",
        help="co-travel communities at --min-weight shared ticks",
    )
    which.add_argument(
        "--lineage", type=int, metavar="CID",
        help="merge/split stage chains through one convoy",
    )
    analytics.add_argument(
        "--width", type=int,
        help="--top-k: also bucket the ranking into windows of this span",
    )
    analytics.add_argument("--step", type=int, help="window stride (sliding)")
    analytics.add_argument(
        "--origin", type=int, default=0, help="timestamp of window 0"
    )
    analytics.add_argument(
        "--start", type=int, help="only convoys ending at or after this tick"
    )
    analytics.add_argument(
        "--end", type=int, help="only convoys ending at or before this tick"
    )
    analytics.add_argument(
        "--by", help="ranking metric (depends on the analytic)"
    )
    analytics.add_argument(
        "--group", choices=["none", "region"], default="none",
        help="--top-k: one global ranking, or one per region cell",
    )
    analytics.add_argument(
        "--k", type=int, dest="limit", metavar="K",
        help="row limit for --regions/--objects/--neighbors",
    )
    analytics.add_argument(
        "--min-weight", type=int, default=1,
        help="--components: edge threshold in shared ticks",
    )
    analytics.add_argument(
        "--min-common", type=int, default=1,
        help="--lineage: members a stage handover must share",
    )
    analytics.add_argument(
        "--depth", type=int, default=8,
        help="--lineage: max hops up/down the stage graph",
    )
    analytics.add_argument(
        "--cell-size", type=float,
        help="region cell size (default: first convoy's bbox extent)",
    )
    analytics.add_argument(
        "--json", action="store_true", help="emit one JSON object per row"
    )
    return parser


def _generate(args: argparse.Namespace) -> int:
    scale = max(args.scale, 0.1)
    if args.kind == "brinkhoff":
        dataset = generate_brinkhoff(
            max_time=int(120 * scale), obj_begin=int(60 * scale),
            obj_per_time=max(1, int(2 * scale)), seed=args.seed,
        )
    elif args.kind == "trucks":
        from .data import TrucksConfig

        dataset = generate_trucks(
            TrucksConfig(
                n_trucks=max(2, int(10 * scale)),
                n_days=max(1, int(3 * scale)),
                seed=args.seed,
            )
        )
    elif args.kind == "tdrive":
        from .data import TDriveConfig

        dataset = generate_tdrive(
            TDriveConfig(
                n_taxis=max(5, int(80 * scale)),
                duration=max(30, int(120 * scale)),
                seed=args.seed,
            )
        )
    else:  # planted
        workload = plant_convoys(
            n_convoys=max(1, int(4 * scale)),
            n_noise=int(40 * scale),
            duration=max(20, int(100 * scale)),
            seed=args.seed,
        )
        dataset = workload.dataset
        print(f"planted convoys (eps={workload.eps}):")
        for convoy in workload.convoys:
            print(f"  {convoy}")
    save_csv(dataset, args.out)
    info = dataset.info()
    print(
        f"wrote {info.num_points} points, {info.num_objects} objects, "
        f"ticks [{info.start_time}, {info.end_time}] -> {args.out}"
    )
    return 0


def _mine(args: argparse.Namespace) -> int:
    try:
        extras = get_miner(args.algorithm).info.schema.parse_cli(args.params)
        session = (
            ConvoySession.from_csv(args.dataset)
            .algorithm(args.algorithm)
            .params(m=args.m, k=args.k, eps=args.eps, **extras)
            .read_from(args.store)
        )
        result = session.mine()
    except SchemaError as error:  # typed parameter violation
        print(f"schema error: {error}", file=sys.stderr)
        return 2
    except ValueError as error:  # e.g. store-incompatible algorithm
        print(str(error), file=sys.stderr)
        return 2
    for convoy in result.convoys:
        members = ",".join(str(o) for o in sorted(convoy.objects))
        print(f"[{convoy.start},{convoy.end}] {{{members}}}")
    print(f"{len(result.convoys)} convoy(s) found")
    if args.stats:
        print(result.stats.summary())
        if result.source_io is not None:
            print(f"store I/O: {result.source_io}")
    return 0


def _algorithms(args: argparse.Namespace) -> int:
    for info in list_miners():
        if args.kind is not None and info.pattern_kind != args.kind:
            continue
        flags = [info.pattern_kind]
        flags.append("exact" if info.exact else "inexact")
        if info.supports_streaming:
            flags.append("streaming")
        print(f"{info.name:<20s} [{', '.join(flags)}] {info.summary}")
        for param in info.schema:
            print(f"{'':<20s}   {param.summary()}")
    return 0


def _print_convoys(convoys) -> None:
    for convoy in convoys:
        members = ",".join(str(o) for o in sorted(convoy.objects))
        print(f"[{convoy.start},{convoy.end}] {{{members}}}")
    print(f"{len(convoys)} convoy(s)")


def _serve(args: argparse.Namespace) -> int:
    backend = args.store
    if args.backend is not None:
        warnings.warn(
            "`serve --backend` is deprecated; use `serve --store`",
            DeprecationWarning,
            stacklevel=2,
        )
        if backend is not None and backend != args.backend:
            print(
                f"conflicting --store {backend!r} and --backend {args.backend!r}",
                file=sys.stderr,
            )
            return 2
        backend = args.backend
    if backend is None:
        backend = "lsmt"
    history = args.history
    if history != "full":
        try:
            history = int(history)
        except ValueError:
            print(
                f"bad --history {args.history!r}; expected 'full' or a "
                "non-negative integer",
                file=sys.stderr,
            )
            return 2
    if args.dataset is None and args.http is None:
        print(
            "serve without a dataset accepts feeds over HTTP only; add --http PORT",
            file=sys.stderr,
        )
        return 2
    if args.durable and not args.index_dir:
        print("--durable journals into the index directory; add --index-dir",
              file=sys.stderr)
        return 2
    try:
        dataset = load_csv(args.dataset) if args.dataset else None
        shards = args.shards or ("2x2" if dataset is not None else "1x1")
        session = (
            ConvoySession.from_dataset(dataset)
            if dataset is not None
            else ConvoySession.blank()
        )
        session = (
            session.params(m=args.m, k=args.k, eps=args.eps)
            .shards(shards)
            .history(history)
            .workers(args.workers)
        )
        if args.index_dir:
            session = session.store(backend, args.index_dir)
        if args.durable:
            session = session.durable(args.checkpoint_every)
        if args.retain_window is not None or args.retain_max_rows is not None:
            session = session.retain(
                window=args.retain_window, max_rows=args.retain_max_rows
            )
        handle = session.serve() if dataset is not None else session.feed()
    except ValueError as error:  # bad shard spec / history / index reopen
        print(str(error), file=sys.stderr)
        return 2
    if handle.stats.recovered_records or handle.stats.duplicates:
        print(
            f"resumed durable state: {handle.stats.ticks} tick(s) applied, "
            f"{handle.stats.recovered_records} WAL record(s) replayed"
        )
    _print_convoys(handle.convoys)
    print(f"ingest: {handle.stats.summary()}")
    if args.http is not None:
        return _serve_http(handle, dataset, args)
    if args.index_dir:
        print(f"index persisted to {args.index_dir} ({backend})")
        handle.close()
    return 0


def _serve_http(handle, dataset, args: argparse.Namespace) -> int:
    """Publish an ingested service over HTTP until interrupted."""
    import asyncio

    from .server import serve_http

    def on_start(host: str, port: int) -> None:
        print(f"serving HTTP on http://{host}:{port}  (Ctrl-C stops)",
              flush=True)

    try:
        asyncio.run(
            serve_http(handle, host=args.host, port=args.http,
                       dataset=dataset, on_start=on_start)
        )
    except KeyboardInterrupt:
        print("\nstopped")
    finally:
        handle.close()
    return 0


def _query(args: argparse.Namespace) -> int:
    handle = ConvoySession.open(args.index_dir)
    engine = handle.query
    try:
        if args.time is not None:
            start, end = (int(part) for part in args.time.split(":"))
            results = engine.time_range(start, end)
        elif args.object is not None:
            results = engine.object_history(args.object)
        elif args.containing is not None:
            oids = [int(part) for part in args.containing.split(",")]
            results = engine.containing(oids)
        else:
            xmin, ymin, xmax, ymax = (float(p) for p in args.region.split(","))
            results = engine.region((xmin, ymin, xmax, ymax))
    except ValueError as error:
        print(
            f"bad query argument ({error}); expected --time start:end, "
            "--containing oid,oid,..., --region xmin,ymin,xmax,ymax",
            file=sys.stderr,
        )
        handle.close()
        return 2
    _print_convoys(results)
    handle.close()
    return 0


def _analytics(args: argparse.Namespace) -> int:
    import json as _json

    handle = ConvoySession.open(args.index_dir)
    engine = handle.analytics(region_cell_size=args.cell_size)
    try:
        if args.windows is not None:
            rows = engine.windowed(
                args.windows, step=args.step, origin=args.origin,
                start=args.start, end=args.end,
            )
            emit = [row.as_dict() for row in rows]
            text = [
                f"[{r.start},{r.end}] {r.count} convoys, "
                f"mean_duration={r.mean_duration:.2f} "
                f"max_duration={r.max_duration} mean_size={r.mean_size:.2f}"
                for r in rows
            ]
        elif args.top_k is not None:
            rows = engine.top_k(
                args.top_k, by=args.by or "duration", group=args.group,
                width=args.width, step=args.step, origin=args.origin,
                start=args.start, end=args.end,
            )
            emit = [row.as_dict() for row in rows]
            text = []
            for r in rows:
                where = "" if r.cell is None else f" cell={r.cell}"
                when = "" if r.window is None else f" window={r.window}"
                text.append(
                    f"#{r.rank}{when}{where} convoy {r.cid} "
                    f"[{r.start},{r.end}] size={r.size} "
                    f"duration={r.duration}"
                )
        elif args.regions:
            rows = engine.group_by_region(
                by=args.by or "count", k=args.limit,
                start=args.start, end=args.end,
            )
            emit = [row.as_dict() for row in rows]
            text = [
                f"#{r.rank} cell={r.cell} count={r.count} "
                f"total_duration={r.total_duration} max_size={r.max_size}"
                for r in rows
            ]
        elif args.objects:
            rows = engine.group_by_object(
                by=args.by or "total_duration", k=args.limit
            )
            emit = [row.as_dict() for row in rows]
            text = [
                f"#{r.rank} object {r.oid} convoys={r.convoys} "
                f"total_duration={r.total_duration} "
                f"max_duration={r.max_duration}"
                for r in rows
            ]
        elif args.pairs is not None:
            pairs = engine.co_travel_pairs(args.pairs)
            emit = [{"a": a, "b": b, "weight": w} for a, b, w in pairs]
            text = [f"{a} <-> {b}: {w} shared ticks" for a, b, w in pairs]
        elif args.neighbors is not None:
            neighbors = engine.co_travel_neighbors(args.neighbors, args.limit)
            emit = [{"object": o, "weight": w} for o, w in neighbors]
            text = [f"{args.neighbors} <-> {o}: {w} shared ticks"
                    for o, w in neighbors]
        elif args.components:
            components = engine.co_travel_components(args.min_weight)
            emit = [{"members": members} for members in components]
            text = [
                f"component of {len(members)}: "
                + ",".join(str(o) for o in members)
                for members in components
            ]
        else:
            lineage = engine.lineage(
                args.lineage, min_common=args.min_common, depth=args.depth
            )
            emit = [lineage.as_dict()]
            text = [
                f"convoy {lineage.cid} [{lineage.start},{lineage.end}] "
                f"size={lineage.size}",
                "parents: " + (", ".join(
                    f"{s.cid} (shared {s.shared})" for s in lineage.parents
                ) or "none"),
                "children: " + (", ".join(
                    f"{s.cid} (shared {s.shared})" for s in lineage.children
                ) or "none"),
            ] + [
                "chain: " + " -> ".join(str(c) for c in chain)
                for chain in lineage.chains
            ]
    except (KeyError, ValueError) as error:
        print(f"bad analytics argument: {error}", file=sys.stderr)
        handle.close()
        return 2
    if args.json:
        for row in emit:
            print(_json.dumps(row, sort_keys=True))
    else:
        for line in text:
            print(line)
        if not text:
            print("no results")
    handle.close()
    return 0


def _lint(args: argparse.Namespace) -> int:
    """Run the invariant checker; devtools import stays lazy so normal
    subcommands never pay for (or depend on) the lint machinery."""
    from .devtools.lint import main as lint_main

    argv: List[str] = []
    if args.root:
        argv.append(args.root)
    if args.strict:
        argv.append("--strict")
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def _stats(args: argparse.Namespace) -> int:
    """Fetch and pretty-print a running server's observability snapshot."""
    from .server.client import NO_RETRY, ConvoyClient, ConvoyServerError

    client = ConvoyClient(args.host, args.port, retry=NO_RETRY)
    try:
        if args.raw:
            print(client.metrics_text(), end="")
            return 0
        stats = client.stats()
    except ConvoyServerError as error:
        print(f"cannot fetch stats from {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    finally:
        client.close()

    print(f"server {args.host}:{args.port}")
    print(f"  requests {stats['requests']}  errors {stats['errors']}  "
          f"rejected {stats['rejected']}  timeouts {stats['timeouts']}  "
          f"pending writes {stats['pending_writes']}")
    for route in sorted(stats["by_route"]):
        print(f"    {route:<24s} {stats['by_route'][route]}")
    cache = stats["cache"]
    print(f"  cache: {cache['hits']} hits / {cache['misses']} misses / "
          f"{cache['evictions']} evictions "
          f"({cache['hit_rate'] * 100:.1f}% hit rate)")
    index = stats["index"]
    print(f"  index: {index['convoys']} convoys @ version {index['version']}")
    if stats.get("ingest"):
        ingest = stats["ingest"]
        print(f"  ingest: {ingest['ticks']} ticks, {ingest['points']} points, "
              f"{ingest['closed_convoys']} closed, "
              f"{ingest['duplicates']} duplicates")
    if stats.get("durability"):
        durability = stats["durability"]
        print(f"  durability: {durability['checkpoints']} checkpoints, "
              f"{durability['recovered_records']} records recovered")
    histograms = stats.get("metrics", {}).get("histograms", {})
    timed = sorted(
        (key, h) for key, h in histograms.items() if h["count"]
    )
    if timed:
        print("  latency (p50 / p95 / p99 ms, count):")
        for key, h in timed:
            print(f"    {key:<52s} {h['p50'] * 1e3:8.3f} / "
                  f"{h['p95'] * 1e3:8.3f} / {h['p99'] * 1e3:8.3f}  "
                  f"n={h['count']}")
    traces = stats.get("traces", {})
    slow = traces.get("slow", [])
    if slow:
        print(f"  slow traces (>= {traces['slow_threshold_ms']:g} ms):")
        for record in slow[-5:]:
            print(f"    {record['trace_id']}  {record['name']:<20s} "
                  f"{record['duration_ms']:.1f} ms")
    return 0


def _info(args: argparse.Namespace) -> int:
    info = load_csv(args.dataset).info()
    print(f"points    : {info.num_points}")
    print(f"objects   : {info.num_objects}")
    print(f"time range: [{info.start_time}, {info.end_time}] ({info.duration} ticks)")
    print(f"extent    : {info.width:.1f} x {info.height:.1f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    # argparse cannot match a trailing nargs="*" positional once options
    # intervene (`mine data.csv -m 3 --algorithm cuts lam=6`), so mine's
    # name=value parameters are collected from the leftovers instead.
    args, leftover = parser.parse_known_args(argv)
    if leftover:
        if args.command == "mine" and all(
            not token.startswith("-") for token in leftover
        ):
            args.params = list(args.params) + leftover
        else:
            parser.error(f"unrecognized arguments: {' '.join(leftover)}")
    handlers = {
        "generate": _generate,
        "mine": _mine,
        "algorithms": _algorithms,
        "info": _info,
        "serve": _serve,
        "lint": _lint,
        "stats": _stats,
        "query": _query,
        "analytics": _analytics,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # `repro-convoy stats | head` closes our stdout mid-print; point
        # it at devnull so the interpreter's exit-time flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
