"""Co-travel graph: objects as nodes, shared-convoy duration as edges.

Every stored convoy contributes its duration to the edge weight of each
member pair, so ``weight(a, b)`` is the total number of ticks ``a`` and
``b`` have spent travelling in the same (maximal) convoy.  The graph is
maintained incrementally — ``+= duration`` when a convoy is indexed,
``-= duration`` when maximality evicts it — which keeps it exactly equal
to a recomputation over the current convoy set at all times.

Maintenance is O(size²) per convoy (one update per member pair); convoy
sizes in this workload are tens at most, so the quadratic term stays
well below the clustering cost that produced the convoy in the first
place.

Queries: ranked neighbors of one object, global top-k pairs (bounded
heap), and connected components above a weight threshold (union-find).
"""

from __future__ import annotations

import heapq
from itertools import combinations
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..clustering.unionfind import UnionFind


class CoTravelGraph:
    """Undirected weighted graph over object ids, duration-weighted."""

    def __init__(self) -> None:
        # Symmetric adjacency: _weights[a][b] == _weights[b][a] > 0.
        self._weights: Dict[int, Dict[int, int]] = {}

    # -- maintenance ---------------------------------------------------------

    def add_convoy(self, objects: Iterable[int], duration: int) -> None:
        for a, b in combinations(sorted(objects), 2):
            self._bump(a, b, duration)

    def remove_convoy(self, objects: Iterable[int], duration: int) -> None:
        for a, b in combinations(sorted(objects), 2):
            self._bump(a, b, -duration)

    def _bump(self, a: int, b: int, delta: int) -> None:
        for u, v in ((a, b), (b, a)):
            row = self._weights.setdefault(u, {})
            weight = row.get(v, 0) + delta
            if weight > 0:
                row[v] = weight
            else:
                # Durations are exact integers, so a fully evicted pair
                # lands back on 0 — drop the edge (and empty nodes) so
                # the graph never accumulates dead entries.
                row.pop(v, None)
                if not row:
                    del self._weights[u]

    # -- queries -------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._weights)

    @property
    def edge_count(self) -> int:
        return sum(len(row) for row in self._weights.values()) // 2

    def weight(self, a: int, b: int) -> int:
        return self._weights.get(a, {}).get(b, 0)

    def neighbors(self, oid: int, k: Optional[int] = None) -> List[Tuple[int, int]]:
        """``(other, weight)`` pairs, heaviest first (ties: smaller id)."""
        row = self._weights.get(int(oid))
        if not row:
            return []
        items = list(row.items())
        key = lambda item: (-item[1], item[0])  # noqa: E731
        if k is None:
            return sorted(items, key=key)
        return heapq.nsmallest(int(k), items, key=key)

    def pairs(self) -> Iterator[Tuple[int, int, int]]:
        """Every edge once, as ``(a, b, weight)`` with ``a < b``."""
        for a, row in self._weights.items():
            for b, weight in row.items():
                if a < b:
                    yield a, b, weight

    def top_pairs(self, k: int) -> List[Tuple[int, int, int]]:
        """The ``k`` heaviest co-travel pairs (bounded heap selection)."""
        key = lambda edge: (-edge[2], edge[0], edge[1])  # noqa: E731
        return heapq.nsmallest(int(k), self.pairs(), key=key)

    def components(self, min_weight: int = 1) -> List[List[int]]:
        """Connected components over edges with ``weight >= min_weight``.

        Returns one sorted member list per component (singletons
        included for nodes whose every edge falls below the threshold),
        largest component first.
        """
        nodes = sorted(self._weights)
        slot = {oid: i for i, oid in enumerate(nodes)}
        forest = UnionFind(len(nodes))
        for a, b, weight in self.pairs():
            if weight >= min_weight:
                forest.union(slot[a], slot[b])
        groups: Dict[int, List[int]] = {}
        for oid in nodes:
            groups.setdefault(forest.find(slot[oid]), []).append(oid)
        return sorted(groups.values(), key=lambda c: (-len(c), c))
