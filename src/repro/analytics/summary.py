"""Materialized convoy summaries: the rows analytics read instead of the index.

The store keeps three incrementally maintained structures, updated from
:class:`~repro.service.index.ConvoyIndex` mutation events:

* **per-end-tick buckets** — every convoy ending at tick ``t`` lands in
  bucket ``t``, which carries running aggregates (count, sum/max of
  duration and size, bbox extent union) plus per-region-cell
  sub-aggregates and the raw per-convoy stat rows.  Any tumbling or
  sliding window is a composition of whole buckets (window membership is
  a pure function of the end tick — see
  :mod:`repro.analytics.windows`), so windowed queries touch buckets,
  never ``Convoy`` objects;
* **per-object aggregates** — convoy count and total/max duration per
  member, for group-by-object ranking;
* **the co-travel graph** (:class:`~repro.analytics.cotravel.CoTravelGraph`).

``on_add``/``on_evict`` make the store an index *listener*: eviction is
not an edge case but the heart of the contract — ``update_maximal``
routinely replaces stored convoys with larger arrivals, and the
summaries must track the surviving maximal set exactly (the equivalence
tests recompute everything brute-force and assert identity).
``on_add`` is idempotent per convoy id, so a listener attached just
before a bootstrap scan can't double-count records added in between.

Region cells are an unbounded integer lattice over the bbox *center*
(``floor(c / cell_size)`` per axis) — no domain bounds needed, stable as
the fleet grows.  The cell size freezes on first use: pass one
explicitly for reproducible grouping, or let the first bboxed convoy
pick ``max(width, height, 1.0)`` of its own box.

Maintenance cost per closed convoy: O(1) bucket/object updates plus the
O(size²) co-travel pair loop; an eviction additionally recomputes its
bucket's aggregates (one scan of that bucket's rows).  The running cost
is exported by the engine's metrics collector.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from ..service.index import BBox, IndexedConvoy
from .cotravel import CoTravelGraph

Cell = Tuple[int, int]


class ConvoyStat(NamedTuple):
    """The summary row of one stored convoy (no ``Convoy`` reference)."""

    cid: int
    start: int
    end: int
    size: int
    duration: int
    cell: Optional[Cell]
    bbox: Optional[BBox]


def _union(extent: Optional[BBox], bbox: Optional[BBox]) -> Optional[BBox]:
    if bbox is None:
        return extent
    if extent is None:
        return bbox
    return (
        min(extent[0], bbox[0]), min(extent[1], bbox[1]),
        max(extent[2], bbox[2]), max(extent[3], bbox[3]),
    )


class Agg:
    """Running count/sum/max aggregates over a set of stat rows."""

    __slots__ = (
        "count", "sum_duration", "max_duration", "sum_size", "max_size",
        "extent",
    )

    def __init__(self) -> None:
        self.count = 0
        self.sum_duration = 0
        self.max_duration = 0
        self.sum_size = 0
        self.max_size = 0
        self.extent: Optional[BBox] = None

    def add(self, stat: ConvoyStat) -> None:
        self.count += 1
        self.sum_duration += stat.duration
        self.sum_size += stat.size
        if stat.duration > self.max_duration:
            self.max_duration = stat.duration
        if stat.size > self.max_size:
            self.max_size = stat.size
        self.extent = _union(self.extent, stat.bbox)

    def merge(self, other: "Agg") -> None:
        self.count += other.count
        self.sum_duration += other.sum_duration
        self.sum_size += other.sum_size
        if other.max_duration > self.max_duration:
            self.max_duration = other.max_duration
        if other.max_size > self.max_size:
            self.max_size = other.max_size
        self.extent = _union(self.extent, other.extent)


class _Bucket:
    """Summary row for one end tick: aggregates + per-cell sub-aggregates."""

    __slots__ = ("entries", "agg", "by_cell")

    def __init__(self) -> None:
        self.entries: Dict[int, ConvoyStat] = {}
        self.agg = Agg()
        self.by_cell: Dict[Cell, Agg] = {}

    def add(self, stat: ConvoyStat) -> None:
        self.entries[stat.cid] = stat
        self.agg.add(stat)
        if stat.cell is not None:
            cell_agg = self.by_cell.get(stat.cell)
            if cell_agg is None:
                cell_agg = self.by_cell[stat.cell] = Agg()
            cell_agg.add(stat)

    def remove(self, cid: int) -> None:
        # Max/extent aggregates don't subtract; evictions are rare next
        # to adds, so one rebuild scan of this bucket's rows is cheap.
        del self.entries[cid]
        self.agg = Agg()
        self.by_cell = {}
        for stat in self.entries.values():
            self.agg.add(stat)
            if stat.cell is not None:
                cell_agg = self.by_cell.get(stat.cell)
                if cell_agg is None:
                    cell_agg = self.by_cell[stat.cell] = Agg()
                cell_agg.add(stat)


class _ObjectAgg:
    __slots__ = ("convoys", "total_duration", "max_duration")

    def __init__(self) -> None:
        self.convoys = 0
        self.total_duration = 0
        self.max_duration = 0


@dataclass
class MaintenanceStats:
    """Running cost of keeping the summaries fresh."""

    adds: int = 0
    evictions: int = 0
    seconds: float = 0.0


class SummaryStore:
    """Incrementally maintained summary rows over one convoy index."""

    def __init__(self, region_cell_size: Optional[float] = None):
        if region_cell_size is not None and region_cell_size <= 0:
            raise ValueError(
                f"region_cell_size must be > 0, got {region_cell_size}"
            )
        self.region_cell_size = region_cell_size
        self.buckets: Dict[int, _Bucket] = {}
        self.stats_by_cid: Dict[int, ConvoyStat] = {}
        self.objects: Dict[int, _ObjectAgg] = {}
        self.graph = CoTravelGraph()
        self.stats = MaintenanceStats()
        # Reverse maps over *surviving* convoys: member tuples per cid
        # (for pair/object teardown on evict) and cid sets per object
        # (so an evicted max_duration can be recomputed without the index).
        self._members: Dict[int, Tuple[int, ...]] = {}
        self._by_object: Dict[int, Set[int]] = {}

    # -- index listener protocol ---------------------------------------------

    def on_add(self, record: IndexedConvoy) -> None:
        if record.convoy_id in self.stats_by_cid:
            return  # bootstrap overlap: already counted
        started = time.perf_counter()
        stat = self._stat_of(record)
        self.stats_by_cid[stat.cid] = stat
        bucket = self.buckets.get(stat.end)
        if bucket is None:
            bucket = self.buckets[stat.end] = _Bucket()
        bucket.add(stat)
        members = tuple(sorted(record.convoy.objects))
        self._members[stat.cid] = members
        for oid in members:
            agg = self.objects.get(oid)
            if agg is None:
                agg = self.objects[oid] = _ObjectAgg()
            agg.convoys += 1
            agg.total_duration += stat.duration
            if stat.duration > agg.max_duration:
                agg.max_duration = stat.duration
            self._by_object.setdefault(oid, set()).add(stat.cid)
        self.graph.add_convoy(members, stat.duration)
        self.stats.adds += 1
        self.stats.seconds += time.perf_counter() - started

    def on_evict(self, record: IndexedConvoy) -> None:
        self.discard(record.convoy_id)

    def discard(self, cid: int) -> None:
        """Forget one convoy id (eviction path; unknown ids are a no-op)."""
        stat = self.stats_by_cid.pop(cid, None)
        if stat is None:
            return  # never tracked (attached after this record came and went)
        started = time.perf_counter()
        bucket = self.buckets[stat.end]
        bucket.remove(stat.cid)
        if not bucket.entries:
            del self.buckets[stat.end]
        members = self._members.pop(stat.cid)
        for oid in members:
            ids = self._by_object[oid]
            ids.discard(stat.cid)
            agg = self.objects[oid]
            agg.convoys -= 1
            agg.total_duration -= stat.duration
            if agg.convoys == 0:
                del self.objects[oid]
                del self._by_object[oid]
            elif stat.duration == agg.max_duration:
                agg.max_duration = max(
                    self.stats_by_cid[other].duration for other in ids
                )
        self.graph.remove_convoy(members, stat.duration)
        self.stats.evictions += 1
        self.stats.seconds += time.perf_counter() - started

    # -- derived -------------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Materialized summary rows (end-tick buckets) currently held."""
        return len(self.buckets)

    @property
    def convoy_count(self) -> int:
        return len(self.stats_by_cid)

    def cell_of(self, bbox: Optional[BBox]) -> Optional[Cell]:
        """Lattice cell of a bbox center (``None`` for bbox-less convoys)."""
        if bbox is None:
            return None
        if self.region_cell_size is None:
            # Freeze the lattice on first contact with spatial data.
            self.region_cell_size = max(
                bbox[2] - bbox[0], bbox[3] - bbox[1], 1.0
            )
        size = self.region_cell_size
        return (
            math.floor((bbox[0] + bbox[2]) / 2.0 / size),
            math.floor((bbox[1] + bbox[3]) / 2.0 / size),
        )

    def members_of(self, oid: int) -> Set[int]:
        """Convoy ids containing the object (summary-side inverted map)."""
        return self._by_object.get(int(oid), set())

    def _stat_of(self, record: IndexedConvoy) -> ConvoyStat:
        convoy = record.convoy
        return ConvoyStat(
            cid=record.convoy_id,
            start=convoy.start,
            end=convoy.end,
            size=convoy.size,
            duration=convoy.duration,
            cell=self.cell_of(record.bbox),
            bbox=record.bbox,
        )
