"""Window semantics for convoy-lifetime aggregation.

A convoy is an *event that closes*: the ingest service publishes it when
its last snapshot is validated, and its end timestamp is the natural
event time for aggregation (the start would attribute a convoy to a
window long before anything is known about it).  Every windowed analytic
therefore assigns a convoy to the window(s) whose span contains its
**end timestamp**.

Windows are half-open integer spans: window ``j`` of a
:class:`WindowSpec` covers end-times in ``[origin + j*step,
origin + j*step + width)``.  With ``step == width`` (the default) the
windows tile the timeline — *tumbling* windows, each convoy in exactly
one.  With ``step < width`` they overlap — *sliding* windows, each
convoy in ``ceil(width / step)``-ish of them.  ``step > width`` is
sampling (gaps between windows) and is allowed too.

Because assignment is a pure function of the end timestamp, per-end-tick
summary rows compose exactly into any window over them — the identity
the property tests in ``tests/test_analytics_equivalence.py`` assert
against brute-force recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class WindowSpec:
    """A tumbling (``step == width``) or sliding window layout.

    Attributes
    ----------
    width:
        Span of each window in ticks (>= 1).
    step:
        Distance between consecutive window starts (>= 1).
    origin:
        Timestamp where window 0 starts; windows extend in both
        directions from it, so negative indices are valid.
    """

    width: int
    step: int
    origin: int = 0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"window width must be >= 1, got {self.width}")
        if self.step < 1:
            raise ValueError(f"window step must be >= 1, got {self.step}")

    @classmethod
    def of(
        cls, width: int, step: Optional[int] = None, origin: int = 0
    ) -> "WindowSpec":
        """``step=None`` means tumbling (step equals width)."""
        return cls(int(width), int(width if step is None else step), int(origin))

    @property
    def tumbling(self) -> bool:
        return self.step == self.width

    def indices_of(self, t: int) -> range:
        """Indices of every window whose span contains timestamp ``t``.

        Window ``j`` contains ``t`` iff ``j*step <= t - origin <
        j*step + width``; both bounds floor-divide exactly on integers
        (Python ``//`` floors, so negative offsets work unchanged).
        """
        offset = t - self.origin
        first = (offset - self.width) // self.step + 1
        last = offset // self.step
        return range(first, last + 1)

    def span(self, j: int) -> Tuple[int, int]:
        """Inclusive ``(start, end)`` tick span of window ``j``."""
        start = self.origin + j * self.step
        return start, start + self.width - 1
