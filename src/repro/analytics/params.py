"""Typed parameter schemas for the analytics HTTP routes (and CLI).

Reuses the algorithm-parameter machinery from :mod:`repro.api.schema`
(submodule import — the api package pulls the server package in, so the
package-level import would cycle): every ``/analytics/*`` route
validates its query string through one of these schemas, so unknown
names, type errors and bounds violations all answer 400 with the same
typed ``SchemaError`` envelope as ``POST /mine``.

The schema layer has no "required" notion (omitted params stay
omitted), so the one mandatory parameter per route is enforced with
:func:`require` after validation.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..api.schema import Param, ParamSchema, SchemaError
from .engine import OBJECT_METRICS, REGION_METRICS, TOP_K_METRICS

_WINDOW_PARAMS = (
    Param("width", int, minimum=1, doc="window span in ticks"),
    Param("step", int, minimum=1,
          doc="window stride (defaults to width: tumbling)"),
    Param("origin", int, default=0, doc="timestamp where window 0 starts"),
    Param("start", int, doc="only convoys ending at or after this tick"),
    Param("end", int, doc="only convoys ending at or before this tick"),
)

WINDOWS_SCHEMA = ParamSchema(_WINDOW_PARAMS, algorithm="analytics/windows")

TOPK_SCHEMA = ParamSchema(
    (
        Param("k", int, default=10, minimum=1, doc="entries per group"),
        Param("by", str, default="duration", choices=TOP_K_METRICS,
              doc="ranking metric"),
        # Nullable on purpose: the wire coerces the literal string
        # "none" to None (the schema's null sentinel), so a default of
        # "none" would reject itself.  Handlers map None back to "none".
        Param("group", str, choices=("none", "region"),
              doc="one ranking, or one per region cell"),
    ) + _WINDOW_PARAMS,
    algorithm="analytics/topk",
)

REGIONS_SCHEMA = ParamSchema(
    (
        Param("by", str, default="count", choices=REGION_METRICS,
              doc="ranking metric"),
        Param("k", int, minimum=1, doc="keep only the top k cells"),
        Param("start", int, doc="only convoys ending at or after this tick"),
        Param("end", int, doc="only convoys ending at or before this tick"),
    ),
    algorithm="analytics/regions",
)

OBJECTS_SCHEMA = ParamSchema(
    (
        Param("by", str, default="total_duration", choices=OBJECT_METRICS,
              doc="ranking metric"),
        Param("k", int, minimum=1, doc="keep only the top k objects"),
    ),
    algorithm="analytics/objects",
)

COTRAVEL_SCHEMA = ParamSchema(
    (
        Param("object", int, minimum=0,
              doc="rank this object's co-travellers instead of all pairs"),
        Param("k", int, default=10, minimum=1, doc="pairs / neighbors to keep"),
        Param("components", bool, default=False,
              doc="return travel communities instead of pairs"),
        Param("min_weight", int, default=1, minimum=1,
              doc="component edge threshold in shared ticks"),
    ),
    algorithm="analytics/cotravel",
)

LINEAGE_SCHEMA = ParamSchema(
    (
        Param("convoy", int, minimum=0, doc="convoy id to trace"),
        Param("min_common", int, default=1, minimum=1,
              doc="members a stage handover must share"),
        Param("depth", int, default=8, minimum=1,
              doc="max hops up/down the stage graph"),
    ),
    algorithm="analytics/lineage",
)


def require(values: Mapping[str, Any], name: str, schema: ParamSchema) -> Any:
    """The one mandatory parameter of a route, or a typed 400."""
    if name not in values or values[name] is None:
        raise SchemaError(
            f"parameter {name!r} of {schema.algorithm!r} is required",
            param=name, algorithm=schema.algorithm,
        )
    return values[name]


def validated(schema: ParamSchema, raw: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a query mapping and fill in the schema defaults."""
    values = schema.validate(raw)
    for param in schema:
        if param.name not in values and param.default is not None:
            values[param.name] = param.default
    return values
