"""Brute-force recomputation oracles for every analytic query.

Each function recomputes one :class:`~repro.analytics.engine.ConvoyAnalytics`
query from scratch over a raw record list — no summaries, no incremental
state — and returns the *same row types in the same order*.  They serve
two masters:

* the property tests (``tests/test_analytics_equivalence.py``) assert
  ``engine.query(...) == brute_query(index.records(), ...)`` across
  datasets and parameters, proving the incremental maintenance exact;
* the benchmark (``benchmarks/serve_load.py --analytics``) times them as
  the "naive raw-index scan" baseline the summary-backed engine is
  required to beat.

Pass ``cell_size=engine.region_cell_size`` so both sides quantize
regions over the same lattice.
"""

from __future__ import annotations

import math
from collections import defaultdict
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..service.index import BBox, IndexedConvoy
from .engine import (
    OBJECT_METRICS,
    REGION_METRICS,
    TOP_K_METRICS,
    ObjectRow,
    RegionRow,
    TopConvoyRow,
    WindowRow,
    _group_sort_key,
)
from .summary import Cell
from .windows import WindowSpec


def _cell(bbox: Optional[BBox], cell_size: Optional[float]) -> Optional[Cell]:
    if bbox is None or cell_size is None:
        return None
    return (
        math.floor((bbox[0] + bbox[2]) / 2.0 / cell_size),
        math.floor((bbox[1] + bbox[3]) / 2.0 / cell_size),
    )


def _union(extent: Optional[BBox], bbox: Optional[BBox]) -> Optional[BBox]:
    if bbox is None:
        return extent
    if extent is None:
        return bbox
    return (
        min(extent[0], bbox[0]), min(extent[1], bbox[1]),
        max(extent[2], bbox[2]), max(extent[3], bbox[3]),
    )


def _in_range(
    record: IndexedConvoy, start: Optional[int], end: Optional[int]
) -> bool:
    tick = record.convoy.end
    if start is not None and tick < start:
        return False
    if end is not None and tick > end:
        return False
    return True


def brute_windowed(
    records: Sequence[IndexedConvoy],
    width: int,
    step: Optional[int] = None,
    origin: int = 0,
    start: Optional[int] = None,
    end: Optional[int] = None,
) -> List[WindowRow]:
    spec = WindowSpec.of(width, step, origin)
    per_window: Dict[int, List[IndexedConvoy]] = defaultdict(list)
    for record in records:
        if _in_range(record, start, end):
            for j in spec.indices_of(record.convoy.end):
                per_window[j].append(record)
    rows = []
    for j in sorted(per_window):
        group = per_window[j]
        durations = [r.convoy.duration for r in group]
        sizes = [r.convoy.size for r in group]
        extent: Optional[BBox] = None
        for record in group:
            extent = _union(extent, record.bbox)
        w_start, w_end = spec.span(j)
        rows.append(WindowRow(
            start=w_start, end=w_end, count=len(group),
            total_duration=sum(durations), max_duration=max(durations),
            mean_duration=sum(durations) / len(group),
            total_size=sum(sizes), max_size=max(sizes),
            mean_size=sum(sizes) / len(group),
            extent=extent,
        ))
    return rows


def brute_top_k(
    records: Sequence[IndexedConvoy],
    cell_size: Optional[float],
    k: int,
    by: str = "duration",
    group: str = "none",
    width: Optional[int] = None,
    step: Optional[int] = None,
    origin: int = 0,
    start: Optional[int] = None,
    end: Optional[int] = None,
) -> List[TopConvoyRow]:
    assert by in TOP_K_METRICS and group in ("none", "region")
    spec = None if width is None else WindowSpec.of(width, step, origin)
    by_region = group == "region"
    groups: Dict[Tuple[Optional[int], Optional[Cell]], list] = defaultdict(list)
    for record in records:
        if not _in_range(record, start, end):
            continue
        convoy = record.convoy
        cell = _cell(record.bbox, cell_size)
        if by_region and cell is None:
            continue
        metric = convoy.duration if by == "duration" else convoy.size
        windows: Sequence[Optional[int]] = (
            (None,) if spec is None else spec.indices_of(convoy.end)
        )
        for j in windows:
            groups[(j, cell if by_region else None)].append((metric, record))
    rows: List[TopConvoyRow] = []
    for gkey in sorted(groups, key=_group_sort_key):
        j, cell = gkey
        window = None if j is None or spec is None else spec.span(j)
        ranked = sorted(
            groups[gkey], key=lambda mr: (-mr[0], mr[1].convoy_id)
        )[: int(k)]
        for rank, (metric, record) in enumerate(ranked, start=1):
            convoy = record.convoy
            rows.append(TopConvoyRow(
                rank=rank, cid=record.convoy_id, metric=metric,
                start=convoy.start, end=convoy.end, size=convoy.size,
                duration=convoy.duration, window=window, cell=cell,
            ))
    return rows


def brute_group_by_region(
    records: Sequence[IndexedConvoy],
    cell_size: Optional[float],
    by: str = "count",
    k: Optional[int] = None,
    start: Optional[int] = None,
    end: Optional[int] = None,
) -> List[RegionRow]:
    assert by in REGION_METRICS
    per_cell: Dict[Cell, List[IndexedConvoy]] = defaultdict(list)
    for record in records:
        cell = _cell(record.bbox, cell_size)
        if cell is not None and _in_range(record, start, end):
            per_cell[cell].append(record)
    aggregates = {}
    for cell, group in per_cell.items():
        durations = [r.convoy.duration for r in group]
        sizes = [r.convoy.size for r in group]
        extent: Optional[BBox] = None
        for record in group:
            extent = _union(extent, record.bbox)
        aggregates[cell] = {
            "count": len(group),
            "total_duration": sum(durations), "max_duration": max(durations),
            "total_size": sum(sizes), "max_size": max(sizes),
            "extent": extent,
        }
    ranked = sorted(
        aggregates.items(), key=lambda item: (-item[1][by], item[0])
    )
    if k is not None:
        ranked = ranked[: int(k)]
    return [
        RegionRow(rank=rank, cell=cell, **agg)
        for rank, (cell, agg) in enumerate(ranked, start=1)
    ]


def brute_group_by_object(
    records: Sequence[IndexedConvoy],
    by: str = "total_duration",
    k: Optional[int] = None,
) -> List[ObjectRow]:
    assert by in OBJECT_METRICS
    per_object: Dict[int, List[int]] = defaultdict(list)
    for record in records:
        for oid in record.convoy.objects:
            per_object[oid].append(record.convoy.duration)
    aggregates = {
        oid: {
            "convoys": len(durations),
            "total_duration": sum(durations),
            "max_duration": max(durations),
        }
        for oid, durations in per_object.items()
    }
    ranked = sorted(
        aggregates.items(), key=lambda item: (-item[1][by], item[0])
    )
    if k is not None:
        ranked = ranked[: int(k)]
    return [
        ObjectRow(rank=rank, oid=oid, **agg)
        for rank, (oid, agg) in enumerate(ranked, start=1)
    ]


def brute_co_travel_weights(
    records: Sequence[IndexedConvoy],
) -> Dict[Tuple[int, int], int]:
    """Pair weights ``{(a, b): ticks}`` with ``a < b``, from scratch."""
    weights: Dict[Tuple[int, int], int] = defaultdict(int)
    for record in records:
        for a, b in combinations(sorted(record.convoy.objects), 2):
            weights[(a, b)] += record.convoy.duration
    return dict(weights)


def brute_co_travel_pairs(
    records: Sequence[IndexedConvoy], k: int
) -> List[Tuple[int, int, int]]:
    weights = brute_co_travel_weights(records)
    edges = [(a, b, w) for (a, b), w in weights.items()]
    edges.sort(key=lambda edge: (-edge[2], edge[0], edge[1]))
    return edges[: int(k)]


def brute_co_travel_neighbors(
    records: Sequence[IndexedConvoy], oid: int, k: Optional[int] = None
) -> List[Tuple[int, int]]:
    weights = brute_co_travel_weights(records)
    items = []
    for (a, b), w in weights.items():
        if a == oid:
            items.append((b, w))
        elif b == oid:
            items.append((a, w))
    items.sort(key=lambda item: (-item[1], item[0]))
    return items if k is None else items[: int(k)]


def brute_co_travel_components(
    records: Sequence[IndexedConvoy], min_weight: int = 1
) -> List[List[int]]:
    weights = brute_co_travel_weights(records)
    adjacency: Dict[int, List[int]] = defaultdict(list)
    nodes = set()
    for (a, b), w in weights.items():
        nodes.update((a, b))
        if w >= min_weight:
            adjacency[a].append(b)
            adjacency[b].append(a)
    components = []
    seen = set()
    for node in sorted(nodes):
        if node in seen:
            continue
        component = []
        stack = [node]
        seen.add(node)
        while stack:
            current = stack.pop()
            component.append(current)
            for other in adjacency[current]:
                if other not in seen:
                    seen.add(other)
                    stack.append(other)
        components.append(sorted(component))
    return sorted(components, key=lambda c: (-len(c), c))
