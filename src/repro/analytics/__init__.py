"""Analytic query layer over convoy history.

The serving layer answers point lookups ("which convoys overlap
[t1, t2]?"); this package answers aggregate questions a fleet operator
asks — windowed counts and durations, top-k rankings per region per
window, co-travel structure, and merge/split lineage — from summary
rows maintained incrementally as convoys close, never by scanning the
raw index.

Entry points: ``service.analytics()`` on a
:class:`~repro.api.session.ConvoyService`, the ``analytics`` CLI
subcommand, and the ``/analytics/*`` HTTP routes.
"""

from .cotravel import CoTravelGraph
from .engine import (
    ConvoyAnalytics,
    Lineage,
    LineageStage,
    OBJECT_METRICS,
    ObjectRow,
    REGION_METRICS,
    RegionRow,
    TOP_K_METRICS,
    TopConvoyRow,
    WindowRow,
)
from .summary import ConvoyStat, SummaryStore
from .windows import WindowSpec

__all__ = [
    "CoTravelGraph",
    "ConvoyAnalytics",
    "ConvoyStat",
    "Lineage",
    "LineageStage",
    "OBJECT_METRICS",
    "ObjectRow",
    "REGION_METRICS",
    "RegionRow",
    "SummaryStore",
    "TOP_K_METRICS",
    "TopConvoyRow",
    "WindowRow",
    "WindowSpec",
]
