"""``ConvoyAnalytics`` — the analytic query surface over a convoy index.

Sits beside :class:`~repro.service.query.ConvoyQueryEngine`: the point
lookups answer *which convoys*, this engine answers *how the fleet
behaves in aggregate* — windowed counts and durations, top-k rankings
per region or per window, who co-travels with whom, and how a convoy
relates to its predecessors and successors.

All aggregate queries read the incrementally maintained
:class:`~repro.analytics.summary.SummaryStore` (attached to the index as
a mutation listener and bootstrapped from a snapshot on construction);
they never materialise ``Convoy`` objects or scan the raw index.  The
exception is :meth:`lineage`, which is a graph query over a handful of
candidate convoys and reads them from the index directly.

Every analytic is timed into ``repro_analytics_query_seconds{kind}`` and
wrapped in a trace span; a scrape-time collector exports the summary row
count and the running maintenance cost.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..extensions.evolving import stage_link
from ..obs import METRICS, TRACER
from ..service.index import BBox, ConvoyIndex, _retry_copy
from .summary import Agg, Cell, SummaryStore
from .windows import WindowSpec

#: Metrics a convoy can be ranked by in ``top_k``.
TOP_K_METRICS = ("duration", "size")

#: Aggregates a region grouping can be ranked by.
REGION_METRICS = (
    "count", "total_duration", "max_duration", "total_size", "max_size",
)

#: Aggregates an object grouping can be ranked by.
OBJECT_METRICS = ("total_duration", "convoys", "max_duration")

#: Bound on the number of stage chains ``lineage`` will enumerate.
_MAX_CHAINS = 256

_ANALYTIC_SECONDS = METRICS.histogram(
    "repro_analytics_query_seconds",
    "Analytic query latency per kind.",
    ["kind"],
)
_ANALYTIC_TIMERS = {
    kind: _ANALYTIC_SECONDS.labels(kind)
    for kind in (
        "windowed", "top_k", "group_by_region", "group_by_object",
        "co_travel", "lineage",
    )
}


def _collect_analytics(engine: "ConvoyAnalytics"):
    store = engine.summary
    stats = store.stats
    return [
        ("repro_analytics_summary_rows", "gauge",
         "Materialized per-end-tick summary rows.", (),
         float(store.row_count)),
        ("repro_analytics_tracked_convoys", "gauge",
         "Convoys currently covered by the summaries.", (),
         float(store.convoy_count)),
        ("repro_analytics_cotravel_edges", "gauge",
         "Edges in the co-travel graph.", (),
         float(store.graph.edge_count)),
        ("repro_analytics_maintenance_adds_total", "counter",
         "Summary maintenance events.", (), float(stats.adds)),
        ("repro_analytics_maintenance_evictions_total", "counter",
         "Summary maintenance events.", (), float(stats.evictions)),
        ("repro_analytics_maintenance_seconds_total", "counter",
         "Time spent keeping the summaries fresh.", (), float(stats.seconds)),
    ]


# -- result rows (wire-ready via as_dict) -------------------------------------


@dataclass(frozen=True)
class WindowRow:
    """Aggregates over the convoys that closed inside one window."""

    start: int
    end: int  # inclusive last end-tick the window covers
    count: int
    total_duration: int
    max_duration: int
    mean_duration: float
    total_size: int
    max_size: int
    mean_size: float
    extent: Optional[BBox]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "start": self.start, "end": self.end, "count": self.count,
            "total_duration": self.total_duration,
            "max_duration": self.max_duration,
            "mean_duration": self.mean_duration,
            "total_size": self.total_size, "max_size": self.max_size,
            "mean_size": self.mean_size,
            "extent": None if self.extent is None else list(self.extent),
        }


@dataclass(frozen=True)
class TopConvoyRow:
    """One ranked convoy inside its ``(window, cell)`` group."""

    rank: int
    cid: int
    metric: int
    start: int
    end: int
    size: int
    duration: int
    window: Optional[Tuple[int, int]]  # inclusive span, None when unwindowed
    cell: Optional[Cell]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank, "cid": self.cid, "metric": self.metric,
            "start": self.start, "end": self.end, "size": self.size,
            "duration": self.duration,
            "window": None if self.window is None else list(self.window),
            "cell": None if self.cell is None else list(self.cell),
        }


@dataclass(frozen=True)
class RegionRow:
    """Ranked aggregates of one region cell."""

    rank: int
    cell: Cell
    count: int
    total_duration: int
    max_duration: int
    total_size: int
    max_size: int
    extent: Optional[BBox]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank, "cell": list(self.cell), "count": self.count,
            "total_duration": self.total_duration,
            "max_duration": self.max_duration,
            "total_size": self.total_size, "max_size": self.max_size,
            "extent": None if self.extent is None else list(self.extent),
        }


@dataclass(frozen=True)
class ObjectRow:
    """Ranked per-object aggregates over every convoy it travelled in."""

    rank: int
    oid: int
    convoys: int
    total_duration: int
    max_duration: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank, "oid": self.oid, "convoys": self.convoys,
            "total_duration": self.total_duration,
            "max_duration": self.max_duration,
        }


@dataclass(frozen=True)
class LineageStage:
    """One convoy in a lineage answer, with its overlap to the target."""

    cid: int
    start: int
    end: int
    size: int
    shared: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "cid": self.cid, "start": self.start, "end": self.end,
            "size": self.size, "shared": self.shared,
        }


@dataclass(frozen=True)
class Lineage:
    """Merge/split neighborhood of one convoy in the stage graph."""

    cid: int
    start: int
    end: int
    size: int
    min_common: int
    parents: Tuple[LineageStage, ...]
    children: Tuple[LineageStage, ...]
    chains: Tuple[Tuple[int, ...], ...]
    stages: Tuple[LineageStage, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "cid": self.cid, "start": self.start, "end": self.end,
            "size": self.size, "min_common": self.min_common,
            "parents": [s.as_dict() for s in self.parents],
            "children": [s.as_dict() for s in self.children],
            "chains": [list(chain) for chain in self.chains],
            "stages": [s.as_dict() for s in self.stages],
        }


def _group_sort_key(gkey: Tuple[Optional[int], Optional[Cell]]):
    window, cell = gkey
    return (
        window is not None, window if window is not None else 0,
        cell is not None, cell if cell is not None else (0, 0),
    )


class ConvoyAnalytics:
    """Analytic queries over one :class:`ConvoyIndex`, summary-backed.

    Construction attaches a :class:`SummaryStore` to the index as a
    mutation listener, bootstraps it from a point-in-time snapshot, then
    reconciles: a record evicted *during* the bootstrap scan is dropped
    again afterwards, so the summaries equal the live maximal set even
    when a writer keeps feeding throughout.

    ``region_cell_size`` fixes the region lattice; leave it ``None`` to
    let the first bboxed convoy choose (see :class:`SummaryStore`).
    """

    def __init__(
        self,
        index: ConvoyIndex,
        region_cell_size: Optional[float] = None,
    ):
        self._index = index
        self._store = SummaryStore(region_cell_size)
        index.add_listener(self._store)
        with TRACER.span("analytics.bootstrap"):
            for record in index.records():
                self._store.on_add(record)
            for cid in list(self._store.stats_by_cid):
                if index.get(cid) is None:
                    self._store.discard(cid)
        METRICS.register_object_collector(self, _collect_analytics)

    # -- introspection -------------------------------------------------------

    @property
    def summary(self) -> SummaryStore:
        return self._store

    @property
    def region_cell_size(self) -> Optional[float]:
        return self._store.region_cell_size

    def detach(self) -> None:
        """Stop maintaining the summaries (drops the index listener)."""
        self._index.remove_listener(self._store)

    # -- windowed aggregation ------------------------------------------------

    def windowed(
        self,
        width: int,
        step: Optional[int] = None,
        origin: int = 0,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[WindowRow]:
        """Per-window aggregates over convoy end-times.

        Tumbling by default; pass ``step`` for sliding windows.
        ``start``/``end`` restrict the convoy end-ticks considered
        (inclusive).  Only non-empty windows are returned, ordered by
        window start.
        """
        spec = WindowSpec.of(width, step, origin)
        return self._timed("windowed", lambda: self._windowed(
            spec, start, end
        ))

    def _windowed(
        self, spec: WindowSpec, start: Optional[int], end: Optional[int]
    ) -> List[WindowRow]:
        merged: Dict[int, Agg] = {}
        for tick, bucket in self._bucket_range(start, end):
            for j in spec.indices_of(tick):
                agg = merged.get(j)
                if agg is None:
                    agg = merged[j] = Agg()
                agg.merge(bucket.agg)
        rows = []
        for j in sorted(merged):
            agg = merged[j]
            w_start, w_end = spec.span(j)
            rows.append(WindowRow(
                start=w_start, end=w_end, count=agg.count,
                total_duration=agg.sum_duration,
                max_duration=agg.max_duration,
                mean_duration=agg.sum_duration / agg.count,
                total_size=agg.sum_size, max_size=agg.max_size,
                mean_size=agg.sum_size / agg.count,
                extent=agg.extent,
            ))
        return rows

    # -- top-k ---------------------------------------------------------------

    def top_k(
        self,
        k: int,
        by: str = "duration",
        group: str = "none",
        width: Optional[int] = None,
        step: Optional[int] = None,
        origin: int = 0,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[TopConvoyRow]:
        """The ``k`` highest-ranked convoys, optionally per window / cell.

        ``by`` picks the metric (:data:`TOP_K_METRICS`).  ``group`` is
        ``"none"`` (one global ranking) or ``"region"`` (one ranking per
        region cell; bbox-less convoys have no cell and are excluded).
        ``width`` additionally splits rankings per window.  Memory stays
        bounded at ``k`` entries per live group (min-heap selection).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if by not in TOP_K_METRICS:
            raise ValueError(f"by must be one of {list(TOP_K_METRICS)}, got {by!r}")
        if group not in ("none", "region"):
            raise ValueError(f"group must be 'none' or 'region', got {group!r}")
        spec = None if width is None else WindowSpec.of(width, step, origin)
        return self._timed("top_k", lambda: self._top_k(
            int(k), by, group, spec, start, end
        ))

    def _top_k(
        self,
        k: int,
        by: str,
        group: str,
        spec: Optional[WindowSpec],
        start: Optional[int],
        end: Optional[int],
    ) -> List[TopConvoyRow]:
        by_region = group == "region"
        metric_of = (
            (lambda s: s.duration) if by == "duration" else (lambda s: s.size)
        )
        heaps: Dict[Tuple[Optional[int], Optional[Cell]], list] = {}
        for tick, bucket in self._bucket_range(start, end):
            windows: Sequence[Optional[int]] = (
                (None,) if spec is None else spec.indices_of(tick)
            )
            for stat in _retry_copy(lambda: list(bucket.entries.values())):
                if by_region and stat.cell is None:
                    continue
                # Key orders by metric desc then cid asc when negated,
                # so heap[0] is always the weakest entry of the group.
                key = (metric_of(stat), -stat.cid)
                for j in windows:
                    gkey = (j, stat.cell if by_region else None)
                    heap = heaps.get(gkey)
                    if heap is None:
                        heap = heaps[gkey] = []
                    if len(heap) < k:
                        heapq.heappush(heap, (key, stat))
                    elif key > heap[0][0]:
                        heapq.heapreplace(heap, (key, stat))
        rows: List[TopConvoyRow] = []
        for gkey in sorted(heaps, key=_group_sort_key):
            j, cell = gkey
            window = None if j is None or spec is None else spec.span(j)
            ranked = sorted(heaps[gkey], key=lambda kv: kv[0], reverse=True)
            for rank, (key, stat) in enumerate(ranked, start=1):
                rows.append(TopConvoyRow(
                    rank=rank, cid=stat.cid, metric=key[0],
                    start=stat.start, end=stat.end, size=stat.size,
                    duration=stat.duration, window=window, cell=cell,
                ))
        return rows

    # -- group-by ------------------------------------------------------------

    def group_by_region(
        self,
        by: str = "count",
        k: Optional[int] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[RegionRow]:
        """Per-region-cell aggregates, ranked by ``by`` descending.

        Reads the per-cell sub-aggregates of the summary buckets;
        convoys without a bbox belong to no cell and are not counted.
        """
        if by not in REGION_METRICS:
            raise ValueError(
                f"by must be one of {list(REGION_METRICS)}, got {by!r}"
            )
        return self._timed("group_by_region", lambda: self._group_by_region(
            by, k, start, end
        ))

    def _group_by_region(
        self, by: str, k: Optional[int], start: Optional[int], end: Optional[int]
    ) -> List[RegionRow]:
        merged: Dict[Cell, Agg] = {}
        for _tick, bucket in self._bucket_range(start, end):
            for cell, cell_agg in _retry_copy(
                lambda: list(bucket.by_cell.items())
            ):
                agg = merged.get(cell)
                if agg is None:
                    agg = merged[cell] = Agg()
                agg.merge(cell_agg)
        metric = _REGION_METRIC_OF[by]
        ranked = sorted(
            merged.items(), key=lambda item: (-metric(item[1]), item[0])
        )
        if k is not None:
            ranked = ranked[: int(k)]
        return [
            RegionRow(
                rank=rank, cell=cell, count=agg.count,
                total_duration=agg.sum_duration,
                max_duration=agg.max_duration,
                total_size=agg.sum_size, max_size=agg.max_size,
                extent=agg.extent,
            )
            for rank, (cell, agg) in enumerate(ranked, start=1)
        ]

    def group_by_object(
        self, by: str = "total_duration", k: Optional[int] = None
    ) -> List[ObjectRow]:
        """Per-object aggregates over the full history, ranked descending."""
        if by not in OBJECT_METRICS:
            raise ValueError(
                f"by must be one of {list(OBJECT_METRICS)}, got {by!r}"
            )
        return self._timed("group_by_object", lambda: self._group_by_object(
            by, k
        ))

    def _group_by_object(self, by: str, k: Optional[int]) -> List[ObjectRow]:
        metric = _OBJECT_METRIC_OF[by]
        items = _retry_copy(lambda: list(self._store.objects.items()))
        ranked = sorted(items, key=lambda item: (-metric(item[1]), item[0]))
        if k is not None:
            ranked = ranked[: int(k)]
        return [
            ObjectRow(
                rank=rank, oid=oid, convoys=agg.convoys,
                total_duration=agg.total_duration,
                max_duration=agg.max_duration,
            )
            for rank, (oid, agg) in enumerate(ranked, start=1)
        ]

    # -- co-travel graph -----------------------------------------------------

    def co_travel_neighbors(
        self, oid: int, k: Optional[int] = None
    ) -> List[Tuple[int, int]]:
        """Objects that shared convoys with ``oid``: ``(other, ticks)``."""
        return self._timed(
            "co_travel", lambda: self._store.graph.neighbors(int(oid), k)
        )

    def co_travel_pairs(self, k: int = 10) -> List[Tuple[int, int, int]]:
        """The ``k`` heaviest co-travel pairs ``(a, b, ticks)``."""
        return self._timed("co_travel", lambda: self._store.graph.top_pairs(k))

    def co_travel_components(self, min_weight: int = 1) -> List[List[int]]:
        """Travel communities: components over edges >= ``min_weight``."""
        return self._timed(
            "co_travel", lambda: self._store.graph.components(int(min_weight))
        )

    # -- lineage -------------------------------------------------------------

    def lineage(
        self, cid: int, min_common: int = 1, depth: int = 8
    ) -> Lineage:
        """Merge/split lineage of one stored convoy.

        Uses the evolving-convoy stage relation
        (:func:`~repro.extensions.evolving.stage_link`): convoy ``v``
        follows ``u`` when it starts during (or right after) ``u``,
        outlives it, and shares at least ``min_common`` members.
        Candidate stages are narrowed through the index's inverted
        object map, so only the convoy's actual neighborhood is read.
        Returns direct parents/children plus the maximal stage chains
        through the convoy (up to ``depth`` hops each way, capped at
        %d chains).
        """ % _MAX_CHAINS
        return self._timed("lineage", lambda: self._lineage(
            int(cid), int(min_common), int(depth)
        ))

    def _lineage(self, cid: int, min_common: int, depth: int) -> Lineage:
        index = self._index
        target = index.get(cid)
        if target is None:
            raise KeyError(f"no stored convoy with id {cid}")
        if min_common < 1:
            raise ValueError(f"min_common must be >= 1, got {min_common}")

        def related(node_cid: int) -> Set[int]:
            record = index.get(node_cid)
            if record is None:
                return set()
            ids: Set[int] = set()
            for oid in record.convoy.objects:
                ids.update(index.ids_of_object(oid))
            ids.discard(node_cid)
            return ids

        def expand(roots: Set[int], parents_of: bool) -> Dict[int, List[int]]:
            """Edges toward predecessors (or successors) up to ``depth``."""
            edges: Dict[int, List[int]] = {}
            frontier = set(roots)
            seen = set(roots)
            for _ in range(depth):
                nxt: Set[int] = set()
                for node in frontier:
                    node_convoy = index.get(node).convoy
                    links = []
                    for other in related(node):
                        other_record = index.get(other)
                        if other_record is None:
                            continue
                        u, v = (
                            (other_record.convoy, node_convoy) if parents_of
                            else (node_convoy, other_record.convoy)
                        )
                        if stage_link(u, v, min_common):
                            links.append(other)
                            if other not in seen:
                                seen.add(other)
                                nxt.add(other)
                    edges[node] = sorted(links)
                if not nxt:
                    break
                frontier = nxt
            return edges

        up = expand({cid}, parents_of=True)
        down = expand({cid}, parents_of=False)

        def paths(edges: Dict[int, List[int]], node: int) -> List[Tuple[int, ...]]:
            """Maximal paths away from ``node`` (excluding it), DFS."""
            out: List[Tuple[int, ...]] = []
            stack: List[Tuple[int, Tuple[int, ...]]] = [(node, ())]
            while stack and len(out) < _MAX_CHAINS:
                current, path = stack.pop()
                nexts = [
                    n for n in edges.get(current, []) if n not in path
                ]
                if not nexts:
                    out.append(path)
                    continue
                for n in reversed(nexts):
                    stack.append((n, path + (n,)))
            return out

        chains: List[Tuple[int, ...]] = []
        for prefix in paths(up, cid):
            for suffix in paths(down, cid):
                chains.append(tuple(reversed(prefix)) + (cid,) + suffix)
                if len(chains) >= _MAX_CHAINS:
                    break
            if len(chains) >= _MAX_CHAINS:
                break
        chains.sort()

        def stage_of(other_cid: int) -> LineageStage:
            convoy = index.get(other_cid).convoy
            return LineageStage(
                cid=other_cid, start=convoy.start, end=convoy.end,
                size=convoy.size,
                shared=len(convoy.objects & target.convoy.objects),
            )

        stage_ids = sorted({n for chain in chains for n in chain} - {cid})
        return Lineage(
            cid=cid, start=target.convoy.start, end=target.convoy.end,
            size=target.convoy.size, min_common=min_common,
            parents=tuple(stage_of(n) for n in up.get(cid, [])),
            children=tuple(stage_of(n) for n in down.get(cid, [])),
            chains=tuple(chains),
            stages=tuple(stage_of(n) for n in stage_ids),
        )

    # -- plumbing ------------------------------------------------------------

    def _bucket_range(self, start: Optional[int], end: Optional[int]):
        items = _retry_copy(lambda: list(self._store.buckets.items()))
        # Filter before sorting: a range-restricted query over a long
        # history touches a handful of buckets, so the sort should pay
        # for those, not for every bucket ever materialized.
        if start is not None or end is not None:
            items = [
                (tick, bucket) for tick, bucket in items
                if (start is None or tick >= start)
                and (end is None or tick <= end)
            ]
        items.sort(key=lambda item: item[0])
        return items

    def _timed(self, kind: str, run):
        with TRACER.span("analytics." + kind):
            if not _ANALYTIC_SECONDS.enabled:
                return run()
            started = time.perf_counter()
            result = run()
            _ANALYTIC_TIMERS[kind].observe(time.perf_counter() - started)
            return result


_REGION_METRIC_OF = {
    "count": lambda a: a.count,
    "total_duration": lambda a: a.sum_duration,
    "max_duration": lambda a: a.max_duration,
    "total_size": lambda a: a.sum_size,
    "max_size": lambda a: a.max_size,
}

_OBJECT_METRIC_OF = {
    "total_duration": lambda a: a.total_duration,
    "convoys": lambda a: a.convoys,
    "max_duration": lambda a: a.max_duration,
}
