"""Reporting helpers (ASCII charts for the reproduced figures)."""

from .plot import ascii_chart, print_chart

__all__ = ["ascii_chart", "print_chart"]
