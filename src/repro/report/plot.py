"""Terminal plotting: render the paper's figures as ASCII charts.

The benchmark harness prints tables; this module turns the same series
into log-scale line charts comparable to the paper's gnuplot figures, so
``pytest benchmarks/ -s`` output can be eyeballed against the PDF.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Dict[str, Sequence[float]],
    x_values: Sequence[float],
    *,
    title: str = "",
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
    y_label: str = "",
) -> str:
    """Render named series over shared x values as an ASCII chart.

    Each series gets a marker character; the legend maps markers to names.
    ``log_y`` plots on a log10 axis (most of the paper's figures are
    log-scale).
    """
    if not series:
        raise ValueError("no series to plot")
    lengths = {len(v) for v in series.values()}
    if lengths != {len(x_values)}:
        raise ValueError("all series must align with x_values")
    points: List[Tuple[float, float, str]] = []
    for marker, (name, values) in zip(_MARKERS, series.items()):
        for x, y in zip(x_values, values):
            points.append((float(x), float(y), marker))

    def transform(y: float) -> float:
        if log_y:
            return math.log10(max(y, 1e-12))
        return y

    ys = [transform(y) for _, y, _ in points]
    xs = [x for x, _, _ in points]
    y_lo, y_hi = min(ys), max(ys)
    x_lo, x_hi = min(xs), max(xs)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((transform(y) - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{10 ** y_hi:.3g}" if log_y else f"{y_hi:.3g}"
    bottom_label = f"{10 ** y_lo:.3g}" if log_y else f"{y_lo:.3g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_width)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + f"  {x_lo:<10.4g}{' ' * max(0, width - 24)}{x_hi:>10.4g}"
    )
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def print_chart(series, x_values, **kwargs) -> None:
    print()
    print(ascii_chart(series, x_values, **kwargs))
