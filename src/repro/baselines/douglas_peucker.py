"""Douglas-Peucker polyline simplification (used by the CuTS family).

Reduces a trajectory to the subset of its points whose removal keeps every
original point within ``tolerance`` of the simplified line — the classic
O(T^2) worst-case recursive algorithm the CuTS filter phase is built on.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def douglas_peucker(points: np.ndarray, tolerance: float) -> np.ndarray:
    """Indices of the retained points (always includes both endpoints).

    ``points`` is an (n, 2) array ordered along the trajectory.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if n <= 2:
        return np.arange(n, dtype=np.int64)
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[-1] = True
    stack: List[Tuple[int, int]] = [(0, n - 1)]
    while stack:
        first, last = stack.pop()
        if last - first < 2:
            continue
        interior = points[first + 1 : last]
        distances = _point_segment_distances(interior, points[first], points[last])
        worst = int(np.argmax(distances))
        if distances[worst] > tolerance:
            split = first + 1 + worst
            keep[split] = True
            stack.append((first, split))
            stack.append((split, last))
    return np.flatnonzero(keep)


def simplify_trajectory(
    ts: np.ndarray, xs: np.ndarray, ys: np.ndarray, tolerance: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Simplify a time-ordered trajectory, keeping the timestamps aligned."""
    points = np.column_stack([xs, ys])
    kept = douglas_peucker(points, tolerance)
    return ts[kept], xs[kept], ys[kept]


def _point_segment_distances(
    points: np.ndarray, seg_a: np.ndarray, seg_b: np.ndarray
) -> np.ndarray:
    """Euclidean distance from each point to the segment [seg_a, seg_b]."""
    direction = seg_b - seg_a
    length_sq = float(direction @ direction)
    if length_sq == 0.0:
        return np.linalg.norm(points - seg_a, axis=1)
    t = np.clip((points - seg_a) @ direction / length_sq, 0.0, 1.0)
    projections = seg_a + t[:, None] * direction[None, :]
    return np.linalg.norm(points - projections, axis=1)
