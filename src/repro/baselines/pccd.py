"""PCCD — Partially Connected Convoy Discovery (Yoon & Shahabi, 2009).

The corrected CMC: candidate maintenance tracks intersection chains and a
candidate that does not continue *in its exact shape* is closed (emitted if
long enough) even when smaller intersections continue.  The output is the
complete set of maximal (partially connected) convoys of length >= k —
Definition 3/6 of the k/2-hop paper, before the fully-connected refinement.

Kept deliberately independent of :mod:`repro.core.sweep` (which implements
the same candidate maintenance for validation) so the two can serve as
cross-checks of each other in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..clustering import cluster_snapshot
from ..core.params import ConvoyQuery
from ..core.source import TrajectorySource
from ..core.types import Cluster, Convoy, TimeInterval, Timestamp, maximal_convoys


@dataclass
class PCCDState:
    """Resumable sweep state (reused by the DCM distributed baseline)."""

    query: ConvoyQuery
    active: Dict[Cluster, Timestamp] = field(default_factory=dict)
    closed: List[Convoy] = field(default_factory=list)

    def step(self, t: Timestamp, clusters: Sequence[Cluster]) -> None:
        """Advance the sweep by one timestamp's cluster set."""
        m, k = self.query.m, self.query.k
        survivors: Dict[Cluster, Timestamp] = {}
        for candidate, since in self.active.items():
            kept_whole = False
            for cluster in clusters:
                joint = candidate & cluster
                if len(joint) < m:
                    continue
                earlier = survivors.get(joint)
                if earlier is None or since < earlier:
                    survivors[joint] = since
                if joint == candidate:
                    kept_whole = True
            if not kept_whole and t - since >= k:
                self.closed.append(Convoy(candidate, TimeInterval(since, t - 1)))
        for cluster in clusters:
            survivors.setdefault(cluster, t)
        self.active = survivors

    def finish(self, end: Timestamp) -> List[Convoy]:
        """Close all remaining candidates and return maximal convoys."""
        k = self.query.k
        for candidate, since in self.active.items():
            if end - since + 1 >= k:
                self.closed.append(Convoy(candidate, TimeInterval(since, end)))
        self.active = {}
        return maximal_convoys(self.closed)

    def open_candidates(self) -> List[Convoy]:
        """Active candidates as convoys (used for cross-split stitching)."""
        return [
            Convoy(candidate, TimeInterval(since, since))
            for candidate, since in self.active.items()
        ]


def mine_pccd(source: TrajectorySource, query: ConvoyQuery) -> List[Convoy]:
    """All maximal (partially connected) convoys of length >= k."""
    state = PCCDState(query)
    for t in range(source.start_time, source.end_time + 1):
        oids, xs, ys = source.snapshot(t)
        clusters = cluster_snapshot(oids, xs, ys, query.eps, query.m)
        state.step(t, clusters)
    return state.finish(source.end_time)
