"""VCoDA — valid (fully connected) convoy discovery, and its correction.

Yoon & Shahabi's pipeline is PCCD followed by a validation step (DCVal)
that re-examines each discovered convoy in the database restricted to its
own objects.  The k/2-hop paper points out a flaw in DCVal as published:
when validation *shrinks or splits* a convoy, the fragments are emitted
without being validated again, so the output may still contain convoys
that are not fully connected.

Two drivers are provided:

* :func:`mine_vcoda` — PCCD + single-pass DCVal (the *original*, flawed
  behaviour, kept as a historical baseline);
* :func:`mine_vcoda_star` — PCCD + recursive validation (the correction
  proposed by the k/2-hop paper).  Its output is the exact maximal-FC-convoy
  set and must match :class:`repro.core.k2hop.K2Hop` — the test suite
  enforces this equivalence.
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence, Set

from ..core.params import ConvoyQuery
from ..core.source import TrajectorySource
from ..core.types import Convoy, maximal_convoys
from .pccd import PCCDState, mine_pccd
from ..clustering import cluster_snapshot


class RestrictedSource:
    """A trajectory source restricted to an object set and a time interval.

    Implements the paper's ``DB[T]|O`` so any snapshot-sweeping miner can
    run on a restriction without materialising it.
    """

    def __init__(
        self,
        source: TrajectorySource,
        objects: Sequence[int],
        start: int,
        end: int,
    ):
        self._source = source
        self._objects = sorted(set(objects))
        self._start = start
        self._end = end

    @property
    def num_points(self) -> int:
        # Upper bound; exact counting would need a scan.  Only used for
        # statistics, never for correctness.
        return len(self._objects) * (self._end - self._start + 1)

    @property
    def start_time(self) -> int:
        return self._start

    @property
    def end_time(self) -> int:
        return self._end

    def snapshot(self, t: int):
        return self._source.points_for(t, self._objects)

    def points_for(self, t: int, oids: Sequence[int]):
        wanted = [oid for oid in oids if oid in set(self._objects)]
        return self._source.points_for(t, wanted)


def dcval(
    source: TrajectorySource, convoy: Convoy, query: ConvoyQuery
) -> List[Convoy]:
    """One validation pass: maximal convoys of ``DB[T(v)]|O(v)``.

    Returns ``[convoy]`` iff the candidate is fully connected; otherwise
    the (unvalidated!) fragments.
    """
    restricted = RestrictedSource(source, convoy.objects, convoy.start, convoy.end)
    return mine_pccd(restricted, query)


def mine_vcoda(source: TrajectorySource, query: ConvoyQuery) -> List[Convoy]:
    """PCCD + original single-pass DCVal (historically flawed on fragments)."""
    candidates = mine_pccd(source, query)
    validated: List[Convoy] = []
    for candidate in candidates:
        validated.extend(dcval(source, candidate, query))
    return maximal_convoys(v for v in validated if v.duration >= query.k)


def mine_vcoda_star(source: TrajectorySource, query: ConvoyQuery) -> List[Convoy]:
    """PCCD + recursive validation: exact maximal fully connected convoys."""
    candidates = mine_pccd(source, query)
    return validate_recursive(source, candidates, query)


def validate_recursive(
    source: TrajectorySource, candidates: Sequence[Convoy], query: ConvoyQuery
) -> List[Convoy]:
    """Re-validate fragments until a fixpoint (the paper's DCVal correction)."""
    queue = deque(
        c for c in candidates if c.duration >= query.k and c.size >= query.m
    )
    seen: Set[Convoy] = set(queue)
    confirmed: List[Convoy] = []
    while queue:
        candidate = queue.popleft()
        fragments = dcval(source, candidate, query)
        for fragment in fragments:
            if fragment == candidate:
                confirmed.append(fragment)
            elif (
                fragment.duration >= query.k
                and fragment.size >= query.m
                and fragment not in seen
            ):
                seen.add(fragment)
                queue.append(fragment)
    return maximal_convoys(confirmed)
