"""CMC — the original convoy discovery algorithm (Jeung et al., VLDB 2008).

Sweeps the dataset timestamp by timestamp, clustering every snapshot and
intersecting the running candidates with the clusters.  This is the faithful
*published* version, which Yoon & Shahabi later showed to have accuracy
problems: when a candidate shrinks, the original candidate is dropped
instead of also being closed, so some maximal convoys are missed and
reported lifespans can be wrong.  We keep the flaw on purpose — CMC is a
baseline, and the flaw is part of the historical record the paper builds on
(PCCD is the corrected version).
"""

from __future__ import annotations

from typing import Dict, List

from ..clustering import cluster_snapshot
from ..core.params import ConvoyQuery
from ..core.source import TrajectorySource
from ..core.types import Cluster, Convoy, TimeInterval, Timestamp, maximal_convoys


def mine_cmc(source: TrajectorySource, query: ConvoyQuery) -> List[Convoy]:
    """Run CMC and return its (possibly incomplete) convoy set."""
    active: Dict[Cluster, Timestamp] = {}
    found: List[Convoy] = []

    def close(objects: Cluster, first: Timestamp, last: Timestamp) -> None:
        if last - first + 1 >= query.k:
            found.append(Convoy(objects, TimeInterval(first, last)))

    for t in range(source.start_time, source.end_time + 1):
        oids, xs, ys = source.snapshot(t)
        clusters = cluster_snapshot(oids, xs, ys, query.eps, query.m)
        next_active: Dict[Cluster, Timestamp] = {}
        for candidate, first_seen in active.items():
            extended = False
            for cluster in clusters:
                joint = candidate & cluster
                if len(joint) >= query.m:
                    extended = True
                    previous = next_active.get(joint)
                    if previous is None or first_seen < previous:
                        next_active[joint] = first_seen
            if not extended:
                # Candidate dies entirely; CMC emits it if long enough.
                close(candidate, first_seen, t - 1)
            # CMC's flaw: when the candidate merely *shrank*, the original
            # shape is discarded without being emitted.
        for cluster in clusters:
            next_active.setdefault(cluster, t)
        active = next_active
    for candidate, first_seen in active.items():
        close(candidate, first_seen, source.end_time)
    return maximal_convoys(found)
