"""The CuTS family — filter-and-refine convoy discovery (Jeung et al. 2008).

Phase 1 (filter): every trajectory is Douglas-Peucker-simplified with
tolerance ``delta`` and chopped into ``lam``-tick partitions.  Within each
partition, sub-trajectories are clustered by a trajectory distance with an
*inflated* threshold ``eps + 2*delta`` — the simplification error bound —
so no object of a true convoy is ever filtered out.  Objects in no cluster
in some partition overlapping a candidate lifespan cannot be convoy members
there; their points are dropped for that partition.

Phase 2 (refine): PCCD runs on the reduced dataset; an optional recursive
validation produces fully connected convoys, making the output directly
comparable to VCoDA*/k2-hop.

The three published variants differ in how the filter measures trajectory
distance:

* **CuTS** — average distance between the partitions' interpolated tracks;
* **CuTS+** — maximum distance (a tighter filter, still safe after the
  ``+2*delta`` inflation);
* **CuTS\\*** — maximum distance on *time-synchronised* simplified tracks
  (the time-aware refinement of the original paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Set, Tuple

import numpy as np

from ..core.params import ConvoyQuery
from ..core.types import Convoy
from ..data.dataset import Dataset
from .douglas_peucker import simplify_trajectory
from .pccd import mine_pccd
from .vcoda import validate_recursive

Variant = Literal["cuts", "cuts+", "cuts*"]


@dataclass
class CuTSConfig:
    """Filter-phase knobs (the data-dependent parameters the paper laments)."""

    #: Partition length in ticks; ``None`` derives ``max(2, k // 2)`` so any
    #: convoy of length >= k fully covers at least one partition.
    lam: int = None
    #: Douglas-Peucker tolerance.
    delta: float = 2.0
    variant: Variant = "cuts"
    #: Refine all the way to fully connected convoys (VCoDA*-comparable).
    fully_connected: bool = True


def mine_cuts(
    dataset: Dataset, query: ConvoyQuery, config: CuTSConfig = None
) -> List[Convoy]:
    """Filter-and-refine convoy mining; returns the refined convoy set."""
    config = config or CuTSConfig()
    lam = config.lam if config.lam is not None else max(2, query.k // 2)
    if lam < 2:
        raise ValueError("lam must be >= 2")
    reduced = _filter_phase(dataset, query, config, lam)
    candidates = mine_pccd(reduced, query)
    if not config.fully_connected:
        return candidates
    # Validation must consult the *full* dataset: connectivity may rely on
    # objects the filter dropped.
    return validate_recursive(dataset, candidates, query)


def _filter_phase(
    dataset: Dataset, query: ConvoyQuery, config: CuTSConfig, lam: int
) -> Dataset:
    """Retrieve the trajectories of objects that could be convoy members.

    As in the original CuTS: an object survives when some partition's
    trajectory-distance DBSCAN places it in a cluster.  Objects the filter
    could never evaluate (gaps in every partition) are kept conservatively.
    """
    start, end = dataset.start_time, dataset.end_time
    clustered: Set[int] = set()
    evaluated: Set[int] = set()
    for part_start in range(start, end + 1, lam):
        part_end = min(part_start + lam - 1, end)
        tracks, _partial = _partition_tracks(dataset, part_start, part_end, config)
        evaluated.update(tracks)
        if len(tracks) < query.m:
            continue
        oids = sorted(tracks)
        matrix = _distance_matrix([tracks[o] for o in oids], config.variant)
        threshold = query.eps + 2 * config.delta
        labels = _dbscan_matrix(matrix, threshold, query.m)
        clustered.update(
            oid for oid, label in zip(oids, labels) if label >= 0
        )
    never_evaluated = set(dataset.objects().tolist()) - evaluated
    keep = clustered | never_evaluated
    if not keep:
        return Dataset.empty()
    return dataset.restrict_objects(keep)


def _partition_tracks(
    dataset: Dataset, part_start: int, part_end: int, config: CuTSConfig
) -> Tuple[Dict[int, np.ndarray], List[int]]:
    """Per-object simplified tracks, resampled at the partition's ticks.

    Returns ``(tracks, partial)``: ``tracks`` maps objects present at every
    tick of the partition to their interpolated simplified track; ``partial``
    lists objects with gaps, which the filter must keep unfiltered.
    """
    window = dataset.restrict_time(part_start, part_end)
    tracks: Dict[int, np.ndarray] = {}
    partial: List[int] = []
    ticks = np.arange(part_start, part_end + 1)
    for oid in window.objects().tolist():
        rows = np.flatnonzero(window.oids == oid)
        ts, xs, ys = window.ts[rows], window.xs[rows], window.ys[rows]
        if len(np.unique(ts)) < len(ticks):
            partial.append(oid)
            continue
        sts, sxs, sys = simplify_trajectory(ts, xs, ys, config.delta)
        tracks[oid] = np.column_stack(
            [np.interp(ticks, sts, sxs), np.interp(ticks, sts, sys)]
        )
    return tracks, partial


def _distance_matrix(tracks: List[np.ndarray], variant: Variant) -> np.ndarray:
    """Pairwise trajectory distances for the filter DBSCAN."""
    n = len(tracks)
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            step = np.linalg.norm(tracks[i] - tracks[j], axis=1)
            if variant == "cuts":
                d = float(step.mean())
            else:  # "cuts+" and "cuts*" both use the max; "cuts*" tracks
                # are already time-synchronised by construction here.
                d = float(step.max())
            matrix[i, j] = matrix[j, i] = d
    return matrix


def _dbscan_matrix(matrix: np.ndarray, eps: float, min_pts: int) -> np.ndarray:
    """DBSCAN over a precomputed distance matrix (labels, -1 = noise)."""
    n = len(matrix)
    adjacent = matrix <= eps
    core = adjacent.sum(axis=1) >= min_pts
    labels = np.full(n, -1, dtype=np.int64)
    cluster_id = 0
    for seed in range(n):
        if not core[seed] or labels[seed] != -1:
            continue
        frontier = [seed]
        labels[seed] = cluster_id
        while frontier:
            p = frontier.pop()
            for q in np.flatnonzero(adjacent[p]).tolist():
                if labels[q] == -1:
                    labels[q] = cluster_id
                    if core[q]:
                        frontier.append(q)
        cluster_id += 1
    return labels
