"""Brute-force oracle for maximal fully connected convoys.

Enumerates *every* object subset of size >= m and finds its maximal runs of
consecutive timestamps during which the subset forms a single (m,eps)-cluster
on its own (Definition 4 applied literally).  Exponential in the number of
objects — usable only on tiny inputs — but entirely independent of every
miner in the library, which makes it the ground truth for the randomized
equivalence tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import List

from ..clustering import cluster_snapshot
from ..core.params import ConvoyQuery
from ..core.source import TrajectorySource
from ..core.types import Convoy, TimeInterval, maximal_convoys

#: Hard cap: 2^16 subsets is the most a test should ever pay for.
_MAX_OBJECTS = 16


def mine_oracle(source: TrajectorySource, query: ConvoyQuery) -> List[Convoy]:
    """All maximal FC convoys of length >= k, by exhaustive enumeration."""
    all_oids = set()
    timestamps = list(range(source.start_time, source.end_time + 1))
    for t in timestamps:
        oids, _, _ = source.snapshot(t)
        all_oids.update(int(o) for o in oids)
    if len(all_oids) > _MAX_OBJECTS:
        raise ValueError(
            f"oracle limited to {_MAX_OBJECTS} objects, got {len(all_oids)}"
        )
    objects = sorted(all_oids)
    found: List[Convoy] = []

    def flush(group, run_start, last):
        if run_start is not None and last - run_start + 1 >= query.k:
            found.append(Convoy(group, TimeInterval(run_start, last)))

    for size in range(query.m, len(objects) + 1):
        for subset in combinations(objects, size):
            group = frozenset(subset)
            run_start = None
            for t in timestamps:
                if _is_single_cluster(source, t, subset, query):
                    if run_start is None:
                        run_start = t
                else:
                    flush(group, run_start, t - 1)
                    run_start = None
            flush(group, run_start, timestamps[-1])
    return maximal_convoys(found)


def _is_single_cluster(source, t, subset, query: ConvoyQuery) -> bool:
    """Does ``subset`` form exactly one (m,eps)-cluster on its own at ``t``?"""
    oids, xs, ys = source.points_for(t, list(subset))
    if len(oids) != len(subset):
        return False  # some member has no fix at t
    clusters = cluster_snapshot(oids, xs, ys, query.eps, query.m)
    return clusters == [frozenset(int(o) for o in oids)]
