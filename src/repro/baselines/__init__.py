"""Sequential baseline miners the paper evaluates against."""

from .cmc import mine_cmc
from .cuts import CuTSConfig, mine_cuts
from .douglas_peucker import douglas_peucker, simplify_trajectory
from .oracle import mine_oracle
from .pccd import PCCDState, mine_pccd
from .vcoda import (
    RestrictedSource,
    dcval,
    mine_vcoda,
    mine_vcoda_star,
    validate_recursive,
)

__all__ = [
    "CuTSConfig",
    "PCCDState",
    "RestrictedSource",
    "dcval",
    "douglas_peucker",
    "mine_cmc",
    "mine_cuts",
    "mine_oracle",
    "mine_pccd",
    "mine_vcoda",
    "mine_vcoda_star",
    "simplify_trajectory",
    "validate_recursive",
]
